"""Sketch health: turn raw telemetry into ok/degraded/critical verdicts.

PRs 2–3 made a running filter *measurable* (StatsRegistry snapshots,
tracing, histograms); this module makes it *interpretable*.  A
:class:`HealthModel` consumes a metrics snapshot plus a structural
probe (:func:`repro.core.inspect.structural_probe`) and derives one
:class:`HealthSignal` per failure mode the paper's (epsilon, delta)
guarantee can silently lose:

* ``candidate_occupancy`` / ``candidate_churn`` — the candidate part is
  packed solid or thrashing, so hot keys fall through to the noisy
  vague part.
* ``vague_pressure`` / ``vague_saturation`` — overflow fraction and
  clamped counters: Qweight estimates biased low.
* ``fingerprint_collision`` — probability a fresh key aliases an
  occupied slot (merges two keys' Qweights).
* ``vague_noise`` — live Count-Sketch noise scale relative to the
  report threshold (noise comparable to the threshold means vague-part
  reports are coin flips).
* ``report_rate`` — reports per item over the window between
  evaluations (a spike usually means the threshold drifted below the
  traffic, not that the traffic got worse).
* ``exceedance_drift`` — a z-test on the value-vs-``T`` exceedance
  fraction (:class:`ExceedanceDriftDetector`, the statistic from
  :mod:`repro.streams.drift`): the criteria were calibrated for a
  distribution the stream no longer follows.
* ``shadow_accuracy`` — live precision/recall from the
  :class:`~repro.detection.shadow.ShadowAccuracyEstimator`.
* ``workers_alive`` — pipeline only: dead shard workers are critical.

Verdicts order ``ok < degraded < critical``; aggregation across shards
is worst-wins (:func:`aggregate_reports`).  :class:`HealthMonitor`
bundles a model with the optional drift detector and shadow estimator
and caches its latest :class:`HealthReport`, which the HTTP layer
(:mod:`repro.observability.server`) serves as ``/healthz``.

>>> model = HealthModel()
>>> report = model.evaluate({"qf_items_total": 50_000.0,
...                          "qf_candidate_occupancy": 0.999,
...                          "qf_candidate_swaps_total": 100.0})
>>> report.verdict
'degraded'
>>> any("candidate_occupancy" in reason for reason in report.reasons)
True
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.common.errors import ParameterError
from repro.observability.registry import (
    SPEC_INDEX,
    MetricSpec,
    StatsRegistry,
    base_name,
    sample_name,
)

#: Verdicts in severity order (list index = severity rank).
VERDICTS = ("ok", "degraded", "critical")

#: Help text for the derived health samples the monitor contributes to
#: ``/metrics`` snapshots (kept separate from the raw-telemetry
#: families in ``instrument.FILTER_METRIC_HELP``).
HEALTH_METRIC_HELP = {
    "qf_health_status":
        "Aggregated health verdict (0 ok, 1 degraded, 2 critical).",
    "qf_health_signal":
        "Per-signal health verdict (0 ok, 1 degraded, 2 critical).",
    "qf_shadow_precision":
        "Live precision estimate from the shadow-sampled exact slice.",
    "qf_shadow_recall":
        "Live recall estimate from the shadow-sampled exact slice.",
    "qf_shadow_sampled_keys":
        "Distinct keys tracked exactly by the shadow sampler.",
    "qf_drift_exceedance_fraction":
        "Latest windowed fraction of values exceeding the threshold T.",
    "qf_drift_z":
        "Drift z-score of the latest exceedance window vs the warmup "
        "reference.",
}

_HEALTH_GAUGE_AGG = {
    "qf_health_status": "max",
    "qf_health_signal": "max",
    "qf_shadow_precision": "mean",
    "qf_shadow_recall": "mean",
    "qf_shadow_sampled_keys": "sum",
    "qf_drift_exceedance_fraction": "mean",
    "qf_drift_z": "max",
}

# Snapshots cross process and HTTP boundaries as bare dicts, so the
# exporters need these specs even when no monitor ran in-process —
# registered at import time, mirroring instrument.py.
for _name, _help in HEALTH_METRIC_HELP.items():
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(
            name=_name, kind="gauge", help=_help,
            agg=_HEALTH_GAUGE_AGG[_name],
        ),
    )
del _name, _help


def verdict_rank(verdict: str) -> int:
    """Severity rank of a verdict (0 ok, 1 degraded, 2 critical)."""
    try:
        return VERDICTS.index(verdict)
    except ValueError:
        raise ParameterError(
            f"unknown verdict {verdict!r}; choose from {VERDICTS}"
        ) from None


def worst_verdict(verdicts: Iterable[str]) -> str:
    """The most severe verdict in ``verdicts`` (``"ok"`` when empty)."""
    rank = 0
    for verdict in verdicts:
        rank = max(rank, verdict_rank(verdict))
    return VERDICTS[rank]


@dataclass(frozen=True)
class HealthSignal:
    """One derived health signal with its verdict and explanation."""

    name: str
    verdict: str
    value: float
    reason: str

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "value": self.value,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class HealthReport:
    """A set of signals plus their aggregated verdict.

    ``reasons`` lists only the non-ok signals, each as
    ``"<signal>: <explanation>"`` — the JSON a pager should show.
    """

    verdict: str
    signals: Tuple[HealthSignal, ...]
    source: str = "default"

    @property
    def reasons(self) -> List[str]:
        return [
            f"{signal.name}: {signal.reason}"
            for signal in self.signals
            if signal.verdict != "ok"
        ]

    def signal(self, name: str) -> Optional[HealthSignal]:
        """The named signal, or None when it was not evaluated."""
        for signal in self.signals:
            if signal.name == name:
                return signal
        return None

    def as_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "source": self.source,
            "reasons": self.reasons,
            "signals": [signal.as_dict() for signal in self.signals],
        }


def aggregate_reports(
    reports: Iterable[HealthReport], source: str = "aggregate"
) -> HealthReport:
    """Fold per-shard reports into one: worst verdict wins per signal.

    Signals sharing a name keep the most severe instance (its reason is
    prefixed with the owning report's source so the pager still names
    the shard); the aggregate verdict is the worst across everything.
    """
    chosen: Dict[str, HealthSignal] = {}
    order: List[str] = []
    for report in reports:
        for signal in report.signals:
            prefixed = (
                signal
                if report.source in ("default", "aggregate")
                else HealthSignal(
                    name=signal.name,
                    verdict=signal.verdict,
                    value=signal.value,
                    reason=f"[{report.source}] {signal.reason}",
                )
            )
            current = chosen.get(signal.name)
            if current is None:
                chosen[signal.name] = prefixed
                order.append(signal.name)
            elif verdict_rank(prefixed.verdict) > verdict_rank(current.verdict):
                chosen[signal.name] = prefixed
    signals = tuple(chosen[name] for name in order)
    return HealthReport(
        verdict=worst_verdict(s.verdict for s in signals),
        signals=signals,
        source=source,
    )


@dataclass(frozen=True)
class HealthThresholds:
    """Signal thresholds; the defaults follow ``docs/operations.md``.

    Signals below ``min_items`` observed items report ok ("warming up")
    — young structures read degraded on every ratio.
    """

    min_items: int = 1_000
    occupancy_degraded: float = 0.98
    churn_degraded: float = 0.2
    vague_pressure_degraded: float = 0.10
    saturation_degraded: float = 0.05
    saturation_critical: float = 0.25
    collision_degraded: float = 0.01
    noise_degraded: float = 0.5
    noise_critical: float = 1.0
    report_rate_degraded: float = 0.05
    drift_z_degraded: float = 4.0
    drift_min_delta: float = 0.01
    shadow_precision_degraded: float = 0.9
    shadow_recall_degraded: float = 0.9
    shadow_min_decisions: int = 5


class ExceedanceDriftDetector:
    """Window z-test on the fraction of values exceeding ``threshold``.

    The first ``warmup_windows`` complete windows set the reference
    fraction; afterwards each window's fraction is compared with the
    reference under the binomial normal approximation:
    ``z = |f - ref| / sqrt(ref * (1 - ref) / window_items)``.

    The statistic is the same per-window exceedance fraction that
    :func:`repro.streams.drift.windowed_exceedance_fractions` computes
    offline — this class is its streaming form.

    >>> det = ExceedanceDriftDetector(threshold=10.0, window_items=100,
    ...                               warmup_windows=1)
    >>> det.observe_batch([5.0] * 95 + [50.0] * 5)   # warmup: ref = 0.05
    >>> det.observe_batch([5.0] * 40 + [50.0] * 60)  # drifted window
    >>> det.last_z > 4.0, round(det.last_fraction, 2)
    (True, 0.6)
    """

    def __init__(
        self,
        threshold: float,
        window_items: int = 2_048,
        warmup_windows: int = 3,
    ):
        if window_items < 1:
            raise ParameterError(
                f"window_items must be >= 1, got {window_items}"
            )
        if warmup_windows < 1:
            raise ParameterError(
                f"warmup_windows must be >= 1, got {warmup_windows}"
            )
        self.threshold = threshold
        self.window_items = window_items
        self.warmup_windows = warmup_windows
        self.items_seen = 0
        self.windows_completed = 0
        self.reference: Optional[float] = None
        self.last_fraction: float = 0.0
        self.last_z: float = 0.0
        self._window_count = 0
        self._window_above = 0
        self._warmup_above = 0

    @property
    def warmed_up(self) -> bool:
        """Whether the reference fraction is established."""
        return self.reference is not None

    def observe(self, value: float) -> None:
        """Feed one value."""
        self._window_count += 1
        if value > self.threshold:
            self._window_above += 1
        self.items_seen += 1
        if self._window_count >= self.window_items:
            self._complete_window()

    def observe_batch(self, values) -> None:
        """Feed a value array, slicing it at window boundaries."""
        arr = np.asarray(values, dtype=np.float64)
        start = 0
        n = arr.shape[0]
        self.items_seen += int(n)
        while start < n:
            take = min(self.window_items - self._window_count, n - start)
            segment = arr[start:start + take]
            self._window_above += int(np.count_nonzero(
                segment > self.threshold
            ))
            self._window_count += take
            start += take
            if self._window_count >= self.window_items:
                self._complete_window()

    def _complete_window(self) -> None:
        fraction = self._window_above / self.window_items
        self.windows_completed += 1
        self.last_fraction = fraction
        if self.reference is None:
            self._warmup_above += self._window_above
            if self.windows_completed >= self.warmup_windows:
                self.reference = self._warmup_above / (
                    self.windows_completed * self.window_items
                )
        if self.reference is not None:
            ref = min(max(self.reference, 1e-9), 1.0 - 1e-9)
            sigma = math.sqrt(ref * (1.0 - ref) / self.window_items)
            self.last_z = abs(fraction - ref) / sigma
        self._window_count = 0
        self._window_above = 0


class HealthModel:
    """Stateless-ish signal computation over snapshots and probes.

    The only state kept is the per-source ``(items, reports)`` pair
    from the previous evaluation, which turns the cumulative report
    counter into a per-window report *rate*.
    """

    def __init__(self, thresholds: HealthThresholds = HealthThresholds()):
        self.thresholds = thresholds
        self._windows: Dict[str, Tuple[float, float]] = {}

    # -- snapshot helpers ----------------------------------------------
    @staticmethod
    def _family_sum(
        snapshot: Mapping[str, float], family: str
    ) -> Optional[float]:
        values = [
            value for sample, value in snapshot.items()
            if base_name(sample) == family
        ]
        return sum(values) if values else None

    @staticmethod
    def _family_mean(
        snapshot: Mapping[str, float], family: str
    ) -> Optional[float]:
        values = [
            value for sample, value in snapshot.items()
            if base_name(sample) == family
        ]
        return sum(values) / len(values) if values else None

    # -- evaluation ----------------------------------------------------
    def evaluate(
        self,
        snapshot: Mapping[str, float],
        *,
        probe: Optional[Mapping] = None,
        drift: Optional[ExceedanceDriftDetector] = None,
        shadow_score=None,
        expected_workers: Optional[int] = None,
        source: str = "default",
    ) -> HealthReport:
        """Compute every applicable signal for one snapshot.

        Parameters
        ----------
        snapshot:
            A registry snapshot (live, cached, or cross-shard
            aggregate).
        probe:
            A :func:`~repro.core.inspect.structural_probe` dict for the
            structure behind the snapshot (enables the collision and
            noise signals).
        drift:
            The stream's :class:`ExceedanceDriftDetector`, if one is
            watching the raw values.
        shadow_score:
            A :class:`~repro.detection.shadow.ShadowScore`, if a shadow
            estimator is attached.
        expected_workers:
            For pipelines: how many shard workers should be alive right
            now (None skips the signal).
        source:
            Names the report (shard id or "aggregate"); also keys the
            report-rate window state.
        """
        t = self.thresholds
        probe = probe or {}
        items = self._family_sum(snapshot, "qf_items_total") or 0.0
        warming = items < t.min_items
        signals: List[HealthSignal] = []

        def emit(name, verdict, value, reason):
            if warming and verdict != "ok" and name != "workers_alive":
                verdict, reason = "ok", (
                    f"warming up ({items:.0f} < {t.min_items} items); "
                    + reason
                )
            signals.append(HealthSignal(
                name=name, verdict=verdict, value=float(value),
                reason=reason,
            ))

        # Candidate part: occupancy and election churn.
        occupancy = self._family_mean(snapshot, "qf_candidate_occupancy")
        if occupancy is None and "candidate_occupancy" in probe:
            occupancy = float(probe["candidate_occupancy"])
        if occupancy is not None:
            if occupancy > t.occupancy_degraded:
                emit("candidate_occupancy", "degraded", occupancy,
                     f"candidate part {occupancy:.1%} full — new keys "
                     "only enter by eviction; grow num_buckets")
            else:
                emit("candidate_occupancy", "ok", occupancy,
                     f"occupancy {occupancy:.1%}")

        swaps = self._family_sum(snapshot, "qf_candidate_swaps_total")
        if swaps is not None and items > 0:
            churn = swaps / items
            if churn > t.churn_degraded:
                emit("candidate_churn", "degraded", churn,
                     f"election churn {churn:.1%} per item — bucket "
                     "minimums keep losing; more buckets would "
                     "stabilise the candidate set")
            else:
                emit("candidate_churn", "ok", churn,
                     f"churn {churn:.2%} per item")

        # Vague part: overflow pressure, clamping, collision, noise.
        vague_inserts = self._family_sum(snapshot, "qf_vague_inserts_total")
        if vague_inserts is not None and items > 0:
            pressure = vague_inserts / items
            if pressure > t.vague_pressure_degraded:
                emit("vague_pressure", "degraded", pressure,
                     f"{pressure:.1%} of inserts overflow into the "
                     "vague sketch — collision noise is in play; grow "
                     "the candidate part")
            else:
                emit("vague_pressure", "ok", pressure,
                     f"overflow fraction {pressure:.2%}")

        saturation = self._family_mean(snapshot, "qf_vague_saturation")
        if saturation is None and "vague_saturation" in probe:
            saturation = float(probe["vague_saturation"])
        if saturation is not None:
            if saturation >= t.saturation_critical:
                emit("vague_saturation", "critical", saturation,
                     f"{saturation:.1%} of vague counters clamped — "
                     "Qweights biased low; widen counters now")
            elif saturation >= t.saturation_degraded:
                emit("vague_saturation", "degraded", saturation,
                     f"{saturation:.1%} of vague counters clamped — "
                     "widen counters (counter_kind) or reset sooner")
            else:
                emit("vague_saturation", "ok", saturation,
                     f"saturation {saturation:.2%}")

        collision = probe.get("fingerprint_collision_probability")
        if collision is not None:
            if collision > t.collision_degraded:
                emit("fingerprint_collision", "degraded", collision,
                     f"fingerprint collision probability {collision:.2%}"
                     " — distinct keys alias in the candidate part; "
                     "raise fp_bits")
            else:
                emit("fingerprint_collision", "ok", collision,
                     f"collision probability {collision:.3%}")

        noise_std = probe.get("vague_noise_std")
        report_threshold = probe.get("report_threshold")
        if noise_std is not None and report_threshold:
            ratio = noise_std / report_threshold
            if ratio >= t.noise_critical:
                emit("vague_noise", "critical", ratio,
                     f"vague noise std {noise_std:.1f} exceeds the "
                     f"report threshold {report_threshold:.1f} — "
                     "vague-part reports are noise; grow vague_width")
            elif ratio >= t.noise_degraded:
                emit("vague_noise", "degraded", ratio,
                     f"vague noise std {noise_std:.1f} is "
                     f"{ratio:.0%} of the report threshold — accuracy "
                     "eroding; grow vague_width")
            else:
                emit("vague_noise", "ok", ratio,
                     f"noise/threshold ratio {ratio:.3f}")

        # Report rate over the window since the previous evaluation.
        reports = self._family_sum(snapshot, "qf_reports_total")
        if reports is not None:
            prev_items, prev_reports = self._windows.get(
                source, (0.0, 0.0)
            )
            delta_items = items - prev_items
            delta_reports = reports - prev_reports
            if delta_items < 0 or delta_reports < 0:
                # Counter reset (new run reusing the source name).
                delta_items, delta_reports = items, reports
            self._windows[source] = (items, reports)
            rate = (
                delta_reports / delta_items if delta_items > 0 else 0.0
            )
            if delta_items > 0 and rate > t.report_rate_degraded:
                emit("report_rate", "degraded", rate,
                     f"{rate:.1%} of the last {delta_items:.0f} items "
                     "triggered reports — threshold T likely sits "
                     "below normal traffic; re-calibrate criteria")
            else:
                emit("report_rate", "ok", rate,
                     f"report rate {rate:.3%} per item")

        # Threshold-exceedance drift.
        if drift is not None:
            if not drift.warmed_up:
                emit("exceedance_drift", "ok", drift.last_fraction,
                     f"establishing reference "
                     f"({drift.windows_completed}/"
                     f"{drift.warmup_windows} warmup windows)")
            else:
                z = drift.last_z
                shifted = abs(drift.last_fraction - drift.reference)
                if z >= t.drift_z_degraded and shifted >= t.drift_min_delta:
                    emit("exceedance_drift", "degraded", z,
                         f"exceedance fraction {drift.last_fraction:.1%}"
                         f" vs reference {drift.reference:.1%} "
                         f"(z={z:.1f}) — value distribution drifted "
                         "across T; re-calibrate criteria or reset")
                else:
                    emit("exceedance_drift", "ok", z,
                         f"exceedance {drift.last_fraction:.1%} "
                         f"(reference {drift.reference:.1%}, z={z:.1f})")

        # Shadow accuracy.
        if shadow_score is not None:
            enough_reported = (
                shadow_score.true_positives + shadow_score.false_positives
                >= t.shadow_min_decisions
            )
            enough_truth = (
                shadow_score.true_positives + shadow_score.false_negatives
                >= t.shadow_min_decisions
            )
            bad_precision = (
                enough_reported
                and shadow_score.precision < t.shadow_precision_degraded
            )
            bad_recall = (
                enough_truth
                and shadow_score.recall < t.shadow_recall_degraded
            )
            value = min(shadow_score.precision, shadow_score.recall)
            if bad_precision or bad_recall:
                emit("shadow_accuracy", "degraded", value,
                     f"shadow precision {shadow_score.precision:.2f} "
                     f"[{shadow_score.precision_low:.2f}, "
                     f"{shadow_score.precision_high:.2f}] / recall "
                     f"{shadow_score.recall:.2f} "
                     f"[{shadow_score.recall_low:.2f}, "
                     f"{shadow_score.recall_high:.2f}] on the sampled "
                     "slice — the structure is undersized for this "
                     "stream")
            else:
                emit("shadow_accuracy", "ok", value,
                     f"shadow precision {shadow_score.precision:.2f} / "
                     f"recall {shadow_score.recall:.2f} over "
                     f"{shadow_score.sampled_keys} sampled keys")

        # Worker liveness (pipelines).
        if expected_workers is not None:
            alive = self._family_mean(snapshot, "pipeline_workers_alive")
            if alive is not None:
                if alive < expected_workers:
                    emit("workers_alive", "critical", alive,
                         f"{alive:.0f}/{expected_workers} shard workers"
                         " alive — a worker died; the next feed() or "
                         "finish() will raise")
                else:
                    emit("workers_alive", "ok", alive,
                         f"{alive:.0f}/{expected_workers} workers alive")

        return HealthReport(
            verdict=worst_verdict(s.verdict for s in signals),
            signals=tuple(signals),
            source=source,
        )


class HealthMonitor:
    """A model plus its stream-side detectors, with a cached report.

    Ties together the pieces one deployment needs: the
    :class:`HealthModel`, an optional :class:`ExceedanceDriftDetector`
    (fed the raw values), and an optional
    :class:`~repro.detection.shadow.ShadowAccuracyEstimator` (fed keys
    and values).  ``report()`` recomputes and caches
    :attr:`last_report`; :meth:`health_samples` renders the cached
    report as metric samples for ``/metrics`` — reading the *cache*
    keeps sample rendering free of recursion into the registry and
    cheap enough for any scrape interval.
    """

    def __init__(
        self,
        model: Optional[HealthModel] = None,
        *,
        drift: Optional[ExceedanceDriftDetector] = None,
        shadow=None,
        recorder=None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.model = model if model is not None else HealthModel()
        self.drift = drift
        self.shadow = shadow
        self.recorder = recorder
        self.labels = dict(labels or {})
        self.last_report: Optional[HealthReport] = None
        self.last_shadow_score = None
        self._lock = threading.Lock()

    # -- constructors --------------------------------------------------
    @classmethod
    def for_criteria(
        cls,
        criteria,
        *,
        thresholds: HealthThresholds = HealthThresholds(),
        drift_window_items: int = 2_048,
        drift_warmup_windows: int = 3,
        shadow_sample_rate: Optional[int] = 64,
        shadow_seed: int = 0,
        recorder=None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> "HealthMonitor":
        """Build the standard monitor for a filter/pipeline's criteria.

        ``shadow_sample_rate=None`` disables the shadow estimator (the
        zero-cost configuration the overhead benchmark measures).
        """
        from repro.detection.shadow import ShadowAccuracyEstimator

        drift = ExceedanceDriftDetector(
            threshold=criteria.threshold,
            window_items=drift_window_items,
            warmup_windows=drift_warmup_windows,
        )
        shadow = (
            ShadowAccuracyEstimator(
                criteria, sample_rate=shadow_sample_rate, seed=shadow_seed
            )
            if shadow_sample_rate is not None else None
        )
        return cls(
            HealthModel(thresholds), drift=drift, shadow=shadow,
            recorder=recorder, labels=labels,
        )

    @classmethod
    def for_filter(cls, filt, **kwargs) -> "HealthMonitor":
        """Monitor for a standalone filter (criteria read from it)."""
        return cls.for_criteria(filt.criteria, **kwargs)

    # -- stream observation (off the filter's insert path) -------------
    def observe(self, key, value) -> None:
        """Feed one stream item to the drift/shadow detectors."""
        if self.drift is not None:
            self.drift.observe(value)
        if self.shadow is not None:
            self.shadow.observe(key, value)

    def observe_batch(self, keys, values) -> None:
        """Vectorised :meth:`observe` over a chunk."""
        if self.drift is not None:
            self.drift.observe_batch(values)
        if self.shadow is not None:
            self.shadow.observe_batch(keys, values)

    # -- reporting -----------------------------------------------------
    def report(
        self,
        snapshot: Mapping[str, float],
        *,
        probe: Optional[Mapping] = None,
        reported_keys=None,
        expected_workers: Optional[int] = None,
        source: str = "default",
    ) -> HealthReport:
        """Evaluate and cache a fresh :class:`HealthReport`.

        When a :class:`~repro.observability.recorder.FlightRecorder` is
        attached, every report is forwarded to its trigger policy —
        outside the monitor lock, so a bundle dump in flight never
        blocks concurrent ``health_samples()`` readers or scrapes.
        """
        with self._lock:
            shadow_score = None
            if self.shadow is not None and reported_keys is not None:
                shadow_score = self.shadow.score(reported_keys)
                self.last_shadow_score = shadow_score
            report = self.model.evaluate(
                snapshot,
                probe=probe,
                drift=self.drift,
                shadow_score=shadow_score,
                expected_workers=expected_workers,
                source=source,
            )
            self.last_report = report
        if self.recorder is not None:
            self.recorder.observe_health(report)
        return report

    def health_samples(self) -> Dict[str, float]:
        """The cached report as metric samples (for ``/metrics``).

        Empty until the first :meth:`report` call.
        """
        report = self.last_report
        if report is None:
            return {}
        samples: Dict[str, float] = {
            sample_name("qf_health_status", self.labels or None):
                float(verdict_rank(report.verdict)),
        }
        for signal in report.signals:
            labels = dict(self.labels)
            labels["signal"] = signal.name
            samples[sample_name("qf_health_signal", labels)] = float(
                verdict_rank(signal.verdict)
            )
        if self.drift is not None:
            samples[sample_name(
                "qf_drift_exceedance_fraction", self.labels or None
            )] = self.drift.last_fraction
            samples[sample_name("qf_drift_z", self.labels or None)] = (
                self.drift.last_z
            )
        score = self.last_shadow_score
        if score is not None:
            samples[sample_name(
                "qf_shadow_precision", self.labels or None
            )] = score.precision
            samples[sample_name(
                "qf_shadow_recall", self.labels or None
            )] = score.recall
            samples[sample_name(
                "qf_shadow_sampled_keys", self.labels or None
            )] = float(score.sampled_keys)
        return samples
