"""Low-overhead span tracing with Chrome trace-event JSON export.

A :class:`Tracer` records *spans* (named durations) and *instant
events* into a ring buffer of plain tuples — appends are a deque
``append`` plus two ``perf_counter`` calls, cheap enough to wrap every
pipeline stage.  The buffer is bounded (oldest events drop first, with
a drop counter), so a tracer left attached to a long-running monitor
cannot grow without limit.

Export is the Chrome trace-event JSON format: load the written file in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` to see the
pipeline's feed / insert / queue-wait / merge timeline per process.
``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, shared across
processes, so worker spans folded into the master tracer line up on one
timeline.

>>> tracer = Tracer()
>>> with tracer.span("demo_stage", items=3):
...     pass
>>> tracer.instant("demo_event", kind="report")
>>> [e["name"] for e in tracer.chrome_events()]
['demo_stage', 'demo_event']
>>> tracer.chrome_events()[0]["ph"]
'X'

Filter-core visibility rides an event hook: the scalar
:class:`~repro.core.quantile_filter.QuantileFilter` calls its
``trace_hook`` (``None`` by default — one predicate per event site) on
candidate election, vague→candidate replacement and report emission.
:func:`attach_filter_tracing` installs a sampling
:class:`FilterTraceHook` so a traced run records every ``1/sample_every``
structural event as an instant.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.common.errors import ParameterError

#: Span names the pipeline emits; documented in docs/observability.md
#: and asserted by the CI trace smoke test.
PIPELINE_SPANS = (
    "pipeline_feed",
    "pipeline_merge",
    "pipeline_collect",
    "shard_insert",
    "shard_queue_wait",
)

#: Instant-event names the filter core emits through its trace hook.
FILTER_EVENTS = ("candidate_elect", "candidate_swap", "report")

_DEFAULT_CAPACITY = 65_536


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.add_span(
            self._name,
            self._start,
            time.perf_counter(),
            cat=self._cat,
            args=self._args,
        )


class Tracer:
    """Ring-buffer bounded collector of spans and instant events.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events drop first and are
        counted in :attr:`dropped`.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.recorded = 0
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "pipeline", **args) -> _SpanContext:
        """Context manager timing one named span.

        ``args`` become the Chrome event's ``args`` payload (chunk ids,
        item counts, ...).
        """
        return _SpanContext(self, name, cat, args)

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        cat: str = "pipeline",
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span from explicit ``perf_counter`` times."""
        self._append(
            {
                "name": name,
                "ph": "X",
                "cat": cat,
                "ts": start_s * 1e6,
                "dur": max(0.0, (end_s - start_s) * 1e6),
                "pid": self._pid,
                "tid": threading.get_ident() & 0xFFFF_FFFF,
                "args": dict(args or {}),
            }
        )

    def instant(self, name: str, cat: str = "filter", **args) -> None:
        """Record a zero-duration instant event."""
        self._append(
            {
                "name": name,
                "ph": "i",
                "cat": cat,
                "ts": time.perf_counter() * 1e6,
                "s": "p",
                "pid": self._pid,
                "tid": threading.get_ident() & 0xFFFF_FFFF,
                "args": dict(args),
            }
        )

    def extend(self, events: Iterable[dict]) -> None:
        """Fold already-formatted events (e.g. a worker's) into this
        tracer's buffer."""
        for event in events:
            self._append(dict(event))

    def _append(self, event: dict) -> None:
        self._events.append(event)
        self.recorded += 1

    # ------------------------------------------------------------------
    # reading and export
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        return self.recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def chrome_events(self) -> List[dict]:
        """The retained events, oldest first, in Chrome trace format."""
        return list(self._events)

    def chrome_trace(self, **metadata) -> Dict:
        """The full Chrome trace-event JSON object (Perfetto-loadable)."""
        trace = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }
        if self.dropped:
            metadata.setdefault("droppedEvents", self.dropped)
        if metadata:
            trace["metadata"] = metadata
        return trace

    def write(self, path, **metadata) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(**metadata), handle)

    def clear(self) -> None:
        """Drop all buffered events (the drop counter resets too)."""
        self._events.clear()
        self.recorded = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer({len(self._events)}/{self.capacity} events, "
            f"dropped={self.dropped})"
        )


class FilterTraceHook:
    """Sampling adapter between a filter's trace hook and a tracer.

    The filter calls ``hook(kind, key, bucket, qweight, item_index)``
    on each structural event; every ``sample_every``-th call per kind
    becomes an instant event on the tracer.  ``sample_every=1`` records
    everything (tests); larger values bound tracing cost on hot
    streams.
    """

    __slots__ = ("tracer", "sample_every", "_seen")

    def __init__(self, tracer: Tracer, sample_every: int = 64):
        if sample_every < 1:
            raise ParameterError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.tracer = tracer
        self.sample_every = sample_every
        self._seen: Dict[str, int] = {}

    def __call__(self, kind, key, bucket, qweight, item_index) -> None:
        seen = self._seen.get(kind, 0)
        self._seen[kind] = seen + 1
        if seen % self.sample_every:
            return
        self.tracer.instant(
            kind,
            key=repr(key),
            bucket=bucket,
            qweight=qweight,
            item_index=item_index,
        )


def attach_filter_tracing(
    filt, tracer: Tracer, sample_every: int = 64
) -> FilterTraceHook:
    """Install a sampling trace hook on a scalar filter.

    Only the scalar :class:`~repro.core.quantile_filter.QuantileFilter`
    (and wrappers that expose its ``trace_hook`` attribute) emit
    structural events; the numpy batch engine keeps its hot loop
    hook-free by design.
    """
    if not hasattr(filt, "trace_hook"):
        raise ParameterError(
            f"{type(filt).__name__} has no trace_hook attribute; "
            "structural tracing needs the scalar QuantileFilter"
        )
    hook = FilterTraceHook(tracer, sample_every=sample_every)
    filt.trace_hook = hook
    return hook
