"""The naive dual-Csketch solution (paper Sec. II-D).

Two Count Sketches count, per key, the values above and below the
threshold; after each insert the key's two frequencies are queried and
Definition 4's count condition is evaluated.  Kept as a baseline because
it motivates both QuantileFilter techniques:

* it spends three sketch passes per item (one insert + two queries)
  where the Qweight trick needs one, and
* its reset subtracts *estimated* frequencies, compounding collision
  error — which the candidate part largely eliminates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Set

from repro.common.hashing import canonical_key
from repro.common.memory import sizeof_counter
from repro.core.criteria import Criteria
from repro.core.quantile_filter import Report
from repro.quantiles.base import RANK_EPS
from repro.sketches.count_sketch import CountSketch


class NaiveDualCSketch:
    """Above/below dual Count Sketch detector.

    Parameters
    ----------
    criteria:
        The ``(epsilon, delta, T)`` criteria.
    memory_bytes:
        Total budget, split ``above_fraction`` / rest between the two
        sketches (the paper notes the pair "may differ in size"; with
        ~5 % anomalous items the above-sketch can be smaller).
    """

    def __init__(
        self,
        criteria: Criteria,
        memory_bytes: int,
        *,
        depth: int = 3,
        above_fraction: float = 0.5,
        counter_kind: str = "int32",
        seed: int = 0,
        track_reports: bool = True,
        on_report: Optional[Callable[[Report], None]] = None,
    ):
        self.criteria = criteria
        per_counter = sizeof_counter(counter_kind)
        above_bytes = max(depth * per_counter, int(memory_bytes * above_fraction))
        below_bytes = max(depth * per_counter, memory_bytes - above_bytes)
        self.above = CountSketch(
            depth=depth,
            width=max(1, above_bytes // (depth * per_counter)),
            counter_kind=counter_kind,
            seed=seed,
        )
        self.below = CountSketch(
            depth=depth,
            width=max(1, below_bytes // (depth * per_counter)),
            counter_kind=counter_kind,
            seed=seed + 1,
        )
        self._track_reports = track_reports
        self._on_report = on_report
        self.reported_keys: Set[Hashable] = set()
        self.items_processed = 0
        self.report_count = 0

    def insert(
        self,
        key: Hashable,
        value: float,
        criteria: Optional[Criteria] = None,
    ) -> Optional[Report]:
        """One insert + two queries + the count-condition check."""
        crit = criteria if criteria is not None else self.criteria
        item_index = self.items_processed
        self.items_processed += 1

        key_int = canonical_key(key)
        if value > crit.threshold:
            self.above.update(key_int, 1.0)
        else:
            self.below.update(key_int, 1.0)

        # Estimates can dip below zero under collisions; clamp as counts.
        freq_above = max(0.0, self.above.estimate(key_int))
        freq_below = max(0.0, self.below.estimate(key_int))
        total = freq_above + freq_below
        index = math.floor(total * crit.delta - crit.epsilon + RANK_EPS)
        if index >= 0 and freq_below <= index:
            # Reset by subtracting the (estimated) frequencies — the
            # error-compounding step the paper criticises.
            self.above.delete(key_int, freq_above)
            self.below.delete(key_int, freq_below)
            report = Report(
                key=key,
                qweight=freq_above * crit.positive_weight - freq_below,
                source="naive",
                item_index=item_index,
            )
            self.report_count += 1
            if self._track_reports:
                self.reported_keys.add(key)
            if self._on_report is not None:
                self._on_report(report)
            return report
        return None

    def query(self, key: Hashable) -> float:
        """Qweight-equivalent estimate derived from the two frequencies."""
        key_int = canonical_key(key)
        freq_above = max(0.0, self.above.estimate(key_int))
        freq_below = max(0.0, self.below.estimate(key_int))
        return freq_above * self.criteria.positive_weight - freq_below

    def reset(self) -> None:
        """Clear both sketches."""
        self.above.clear()
        self.below.clear()

    @property
    def nbytes(self) -> int:
        """Modelled total memory footprint in bytes."""
        return self.above.nbytes + self.below.nbytes
