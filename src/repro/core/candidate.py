"""The candidate part: bucketed fingerprint table of elected keys.

An array of ``num_buckets`` buckets, each holding up to ``bucket_size``
entries ``<fingerprint, Qweight>`` (Sec. III-B).  Keys living here get
*exact* per-key Qweight counters, immune to sketch collisions — that is
the accuracy win Theorem 2/3 quantifies.

Storage is two parallel numpy arrays (fingerprints and Qweights); a
fingerprint of 0 marks an empty slot, which is why
:class:`~repro.common.hashing.FingerprintHasher` never emits 0.
Memory is modelled as ``fp_bits/8 + 4`` bytes per slot (16-bit
fingerprint + 32-bit counter = 6 bytes by default, matching the paper's
layout).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.common.errors import ParameterError
from repro.common.memory import bits_to_bytes
from repro.common.validation import require_positive_int

#: Modelled bytes of one Qweight counter in a candidate entry.
QWEIGHT_COUNTER_BYTES = 4


class CandidatePart:
    """Bucketed store of ``<fingerprint, Qweight>`` candidate entries."""

    __slots__ = ("num_buckets", "bucket_size", "fp_bits", "_fps", "_qws")

    def __init__(self, num_buckets: int, bucket_size: int = 6, fp_bits: int = 16):
        require_positive_int("num_buckets", num_buckets)
        require_positive_int("bucket_size", bucket_size)
        if not 1 <= fp_bits <= 64:
            raise ParameterError(f"fp_bits must be in [1, 64], got {fp_bits}")
        self.num_buckets = num_buckets
        self.bucket_size = bucket_size
        self.fp_bits = fp_bits
        self._fps = np.zeros((num_buckets, bucket_size), dtype=np.uint64)
        self._qws = np.zeros((num_buckets, bucket_size), dtype=np.float64)

    @classmethod
    def from_bytes(
        cls, budget_bytes: int, bucket_size: int = 6, fp_bits: int = 16
    ) -> "CandidatePart":
        """Build the largest candidate part fitting in ``budget_bytes``."""
        per_slot = bits_to_bytes(fp_bits) + QWEIGHT_COUNTER_BYTES
        slots = max(bucket_size, budget_bytes // per_slot)
        num_buckets = max(1, slots // bucket_size)
        return cls(num_buckets, bucket_size=bucket_size, fp_bits=fp_bits)

    # ------------------------------------------------------------------
    # slot operations
    # ------------------------------------------------------------------
    def find(self, bucket: int, fingerprint: int) -> Optional[int]:
        """Slot index of ``fingerprint`` in ``bucket``, or None."""
        row = self._fps[bucket]
        for slot in range(self.bucket_size):
            if row[slot] == fingerprint:
                return slot
        return None

    def free_slot(self, bucket: int) -> Optional[int]:
        """Index of an empty slot in ``bucket``, or None when full."""
        row = self._fps[bucket]
        for slot in range(self.bucket_size):
            if row[slot] == 0:
                return slot
        return None

    def get_qweight(self, bucket: int, slot: int) -> float:
        """Qweight stored in ``(bucket, slot)``."""
        return float(self._qws[bucket, slot])

    def add_qweight(self, bucket: int, slot: int, delta: float) -> float:
        """Add ``delta`` to the slot's Qweight; returns the new value."""
        self._qws[bucket, slot] += delta
        return float(self._qws[bucket, slot])

    def set_entry(self, bucket: int, slot: int, fingerprint: int, qweight: float) -> None:
        """Overwrite ``(bucket, slot)`` with a new entry."""
        self._fps[bucket, slot] = fingerprint
        self._qws[bucket, slot] = qweight

    def reset_qweight(self, bucket: int, slot: int) -> None:
        """Zero the slot's Qweight (after a report), keeping the entry."""
        self._qws[bucket, slot] = 0.0

    def evict(self, bucket: int, slot: int) -> Tuple[int, float]:
        """Remove and return the slot's ``(fingerprint, qweight)``."""
        fp = int(self._fps[bucket, slot])
        qw = float(self._qws[bucket, slot])
        self._fps[bucket, slot] = 0
        self._qws[bucket, slot] = 0.0
        return fp, qw

    def min_entry(self, bucket: int) -> Tuple[int, float]:
        """Occupied slot with the smallest Qweight: ``(slot, qweight)``.

        Only call on a full bucket (insertion path guarantees this); on
        a bucket with empty slots the empties' zero Qweights are ignored.
        """
        row_fps = self._fps[bucket]
        row_qws = self._qws[bucket]
        best_slot = -1
        best_qw = np.inf
        for slot in range(self.bucket_size):
            if row_fps[slot] != 0 and row_qws[slot] < best_qw:
                best_qw = float(row_qws[slot])
                best_slot = slot
        if best_slot < 0:
            raise ParameterError(f"bucket {bucket} is empty; no minimum entry")
        return best_slot, best_qw

    # ------------------------------------------------------------------
    # maintenance and stats
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Empty every bucket (the periodic structure reset)."""
        self._fps[...] = 0
        self._qws[...] = 0.0

    def bucket_occupancy(self, bucket: int) -> int:
        """Occupied slots in one bucket (report-provenance context)."""
        return int(np.count_nonzero(self._fps[bucket]))

    def occupancy(self) -> float:
        """Fraction of slots currently holding an entry."""
        return float(np.count_nonzero(self._fps)) / self._fps.size

    def entry_count(self) -> int:
        """Number of occupied slots."""
        return int(np.count_nonzero(self._fps))

    @property
    def nbytes(self) -> int:
        """Modelled bytes: ``(fp_bits/8 + 4)`` per slot."""
        per_slot = bits_to_bytes(self.fp_bits) + QWEIGHT_COUNTER_BYTES
        return self.num_buckets * self.bucket_size * per_slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CandidatePart(num_buckets={self.num_buckets}, "
            f"bucket_size={self.bucket_size}, fp_bits={self.fp_bits}, "
            f"occupancy={self.occupancy():.2f})"
        )
