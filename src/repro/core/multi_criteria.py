"""Multiple simultaneous criteria per key (paper Sec. III-C, third mode).

One QuantileFilter entry holds a single Qweight, which can serve only
one ``(delta, T)`` pair.  To watch, say, both the 99th and the 95th
percentile of the same key, the paper expands each data key into ``r``
composite keys ``(key, criterion_index)`` and inserts each item ``r``
times.  :class:`MultiCriteriaFilter` packages that expansion, demultiplexes
reports back to ``(criterion_index, key)``, and exposes per-criterion
reported-key sets.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Set, Tuple

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter, Report


class MultiCriteriaFilter:
    """QuantileFilter watching ``r`` criteria for every key.

    Parameters
    ----------
    criteria_list:
        The ``r`` monitoring criteria.  Cost per item grows linearly
        with ``r`` (the paper recommends small ``r``).
    memory_bytes:
        Budget of the single underlying QuantileFilter shared by all
        composite keys.
    filter_kwargs:
        Extra keyword arguments forwarded to the underlying filter.
    """

    def __init__(
        self,
        criteria_list: Sequence[Criteria],
        memory_bytes: int,
        **filter_kwargs,
    ):
        if not criteria_list:
            raise ParameterError("criteria_list must contain at least one Criteria")
        self.criteria_list: List[Criteria] = list(criteria_list)
        # The default criteria slot is unused (every insert passes an
        # explicit override), but the filter requires one.
        self._filter = QuantileFilter(
            self.criteria_list[0], memory_bytes, **filter_kwargs
        )
        self.reported_by_criterion: List[Set[Hashable]] = [
            set() for _ in self.criteria_list
        ]
        self.items_processed = 0

    def insert(self, key: Hashable, value: float) -> List[Tuple[int, Report]]:
        """Insert one item under every criterion.

        Returns the (possibly empty) list of triggered reports as
        ``(criterion_index, report)`` pairs, where the report's key is
        the original data key.
        """
        self.items_processed += 1
        results: List[Tuple[int, Report]] = []
        for index, criteria in enumerate(self.criteria_list):
            composite = self._composite_key(key, index)
            raw = self._filter.insert(composite, value, criteria=criteria)
            if raw is not None:
                report = Report(
                    key=key,
                    qweight=raw.qweight,
                    source=raw.source,
                    item_index=raw.item_index,
                )
                self.reported_by_criterion[index].add(key)
                results.append((index, report))
        return results

    def query(self, key: Hashable, criterion_index: int) -> float:
        """Qweight estimate of ``key`` under one criterion."""
        self._check_index(criterion_index)
        return self._filter.query(self._composite_key(key, criterion_index))

    def delete(self, key: Hashable, criterion_index: int) -> None:
        """Clear ``key``'s Qweight under one criterion."""
        self._check_index(criterion_index)
        self._filter.delete(self._composite_key(key, criterion_index))

    def reset(self) -> None:
        """Clear the underlying filter (all criteria at once)."""
        self._filter.reset()

    def _composite_key(self, key: Hashable, index: int) -> tuple:
        if isinstance(key, tuple):
            return key + (index,)
        return (key, index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.criteria_list):
            raise ParameterError(
                f"criterion_index {index} out of range "
                f"[0, {len(self.criteria_list)})"
            )

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint of the shared underlying filter."""
        return self._filter.nbytes
