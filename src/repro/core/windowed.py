"""Windowed operation: the paper's periodic reset, productionised.

Sec. III-B: "a fixed-size QuantileFilter needs to be periodically
cleared ... outdated data should not be included ... it cannot maintain
precision with an unlimited number of insertions."  This module wraps a
filter with that clearing policy:

* **tumbling** — one filter, fully cleared every ``window_items`` items.
  Simple, but a key straddling a boundary loses its partial Qweight.
* **rotating** — two half-budget panes.  Every item goes into both; the
  *elder* pane (the one holding more history) answers and reports.
  Every ``window_items / 2`` items the elder clears and the roles swap,
  so the reporting pane always covers between W/2 and W of the most
  recent items — a standard smooth approximation of a sliding window
  that never serves reports from an empty structure.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter, Report

MODES = ("tumbling", "rotating")


class WindowedQuantileFilter:
    """A QuantileFilter with automatic periodic clearing.

    Parameters
    ----------
    criteria, memory_bytes:
        As for :class:`~repro.core.quantile_filter.QuantileFilter`.
        ``rotating`` mode splits the byte budget across its two panes.
    window_items:
        The clearing period, counted in processed items.
    mode:
        ``"tumbling"`` (default) or ``"rotating"``; see module docstring.
    filter_kwargs:
        Forwarded to the underlying filter(s).
    """

    def __init__(
        self,
        criteria: Criteria,
        memory_bytes: int,
        window_items: int,
        mode: str = "tumbling",
        **filter_kwargs,
    ):
        if window_items < 1:
            raise ParameterError(f"window_items must be >= 1, got {window_items}")
        if mode not in MODES:
            raise ParameterError(f"unknown mode {mode!r}; choose from {MODES}")
        self.criteria = criteria
        self.window_items = window_items
        self.mode = mode
        self.items_processed = 0
        self.resets = 0
        self.report_count = 0
        self.reported_keys: Set[Hashable] = set()
        seed = filter_kwargs.pop("seed", 0)
        if mode == "tumbling":
            self._filter = QuantileFilter(
                criteria, memory_bytes, seed=seed, **filter_kwargs
            )
            self._panes = None
        else:
            pane_bytes = max(2, memory_bytes // 2)
            self._panes = [
                QuantileFilter(criteria, pane_bytes, seed=seed, **filter_kwargs),
                QuantileFilter(criteria, pane_bytes, seed=seed + 1,
                               **filter_kwargs),
            ]
            self._elder = 0
            self._filter = None
        self._since_reset = 0

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: float,
               criteria: Optional[Criteria] = None) -> Optional[Report]:
        """Process one item, applying the clearing policy first."""
        self._maybe_rotate()
        self.items_processed += 1
        self._since_reset += 1
        if self.mode == "tumbling":
            report = self._filter.insert(key, value, criteria=criteria)
        else:
            elder = self._panes[self._elder]
            younger = self._panes[1 - self._elder]
            report = elder.insert(key, value, criteria=criteria)
            if report is not None:
                # Keep the panes consistent: the younger pane's partial
                # Qweight for this key also resets, mirroring
                # Definition 4's value-set reset.
                younger.insert(key, value, criteria=criteria)
                younger.delete(key)
            else:
                younger.insert(key, value, criteria=criteria)
        if report is not None:
            self.reported_keys.add(report.key)
            self.report_count += 1
        return report

    def insert_many(self, keys, values) -> list:
        """Insert a batch of items; returns the emitted reports in order.

        Semantically identical to calling :meth:`insert` per item — the
        clearing policy still fires at exactly the same item positions,
        including mid-batch.  Numpy inputs are unboxed to plain Python
        scalars once via ``tolist`` instead of once per item, matching
        :meth:`QuantileFilter.insert_many
        <repro.core.quantile_filter.QuantileFilter.insert_many>`.
        """
        if hasattr(keys, "tolist"):
            keys = keys.tolist()
        if hasattr(values, "tolist"):
            values = values.tolist()
        insert = self.insert
        return [
            report
            for report in map(insert, keys, values)
            if report is not None
        ]

    def _maybe_rotate(self) -> None:
        if self.mode == "tumbling":
            if self._since_reset >= self.window_items:
                self._filter.reset()
                self.resets += 1
                self._since_reset = 0
            return
        if self._since_reset >= self.window_items // 2 + 1:
            self._panes[self._elder].reset()
            self._elder = 1 - self._elder
            self.resets += 1
            self._since_reset = 0

    def retarget(self, threshold: float) -> Criteria:
        """Move the value threshold ``T`` on every pane, state intact.

        Same semantics as
        :meth:`~repro.core.quantile_filter.QuantileFilter.retarget`;
        the clearing policy additionally bounds how long pre-retarget
        Qweight evidence can linger (one window).  Returns the new
        criteria.
        """
        self.criteria = self.criteria.with_updates(threshold=float(threshold))
        if self.mode == "tumbling":
            self._filter.retarget(threshold)
        else:
            for pane in self._panes:
                pane.retarget(threshold)
        return self.criteria

    @property
    def retargets(self) -> int:
        """Retargets applied (panes always move together)."""
        inner = self._filter if self.mode == "tumbling" else self._panes[0]
        return inner.retargets

    # ------------------------------------------------------------------
    # queries and accounting
    # ------------------------------------------------------------------
    def query(self, key: Hashable) -> float:
        """Qweight estimate over the current window."""
        if self.mode == "tumbling":
            return self._filter.query(key)
        return self._panes[self._elder].query(key)

    @property
    def window_fill(self) -> float:
        """How far into the current clearing period the stream is."""
        period = (
            self.window_items if self.mode == "tumbling"
            else self.window_items // 2 + 1
        )
        return self._since_reset / period

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes (all panes)."""
        if self.mode == "tumbling":
            return self._filter.nbytes
        return sum(pane.nbytes for pane in self._panes)
