"""Candidate-election replacement strategies (Sec. III-D, Choice 1).

When a full bucket's weakest entry competes with a key arriving through
the vague part, one of three policies decides the swap:

* **Comparative** (paper default): swap iff the vague estimate strictly
  exceeds the bucket minimum.
* **Probabilistic**: swap with probability
  ``max(est / (est + min_qw), 0)`` — a smooth version that lets slightly
  weaker keys in occasionally.
* **Forceful**: always swap (recency wins over magnitude).

Fig. 12 compares all three against both vague backends; the paper finds
the choice barely matters with a Count-Sketch vague part.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.common.errors import ParameterError


class ReplacementStrategy(ABC):
    """Decides whether a vague-part key displaces a candidate entry."""

    #: Registry name, set by subclasses.
    name = ""

    @abstractmethod
    def should_replace(self, estimate: float, min_qweight: float) -> bool:
        """True when the arriving key (vague estimate ``estimate``)
        should displace the bucket's weakest entry (``min_qweight``)."""


class ComparativeReplacement(ReplacementStrategy):
    """Swap iff the estimate strictly beats the bucket minimum."""

    name = "comparative"

    def should_replace(self, estimate: float, min_qweight: float) -> bool:
        return estimate > min_qweight


class ProbabilisticReplacement(ReplacementStrategy):
    """Swap with probability ``max(est / (est + min_qw), 0)``.

    The paper's formula is clamped into [0, 1]: a non-positive estimate
    never swaps, and an estimate that dominates a negative minimum
    always does.
    """

    name = "probabilistic"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def should_replace(self, estimate: float, min_qweight: float) -> bool:
        if estimate <= 0:
            return False
        denominator = estimate + min_qweight
        if denominator <= 0:
            # Estimate positive but min so negative the ratio exceeds 1.
            return True
        probability = min(1.0, estimate / denominator)
        return self._rng.random() < probability


class ForcefulReplacement(ReplacementStrategy):
    """Always swap, regardless of Qweight sizes."""

    name = "forceful"

    def should_replace(self, estimate: float, min_qweight: float) -> bool:
        return True


_STRATEGIES = {
    ComparativeReplacement.name: ComparativeReplacement,
    ProbabilisticReplacement.name: ProbabilisticReplacement,
    ForcefulReplacement.name: ForcefulReplacement,
}


def make_strategy(name: str, seed: int = 0) -> ReplacementStrategy:
    """Instantiate a strategy by registry name.

    ``"probabilistic"`` takes the seed; the deterministic strategies
    ignore it.
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown replacement strategy {name!r}; "
            f"choose from {sorted(_STRATEGIES)}"
        ) from None
    if cls is ProbabilisticReplacement:
        return cls(seed=seed)
    return cls()


def strategy_names() -> tuple:
    """All registered strategy names (for sweeps and CLI choices)."""
    return tuple(sorted(_STRATEGIES))
