"""The vague part: a compact sketch tracking non-candidate Qweights.

A thin façade over :class:`~repro.sketches.count_sketch.CountSketch`
(default) or :class:`~repro.sketches.count_min.CountMinSketch` (the
Fig. 12 "CMS" variant) that

* chooses between the two backends by name,
* sizes itself from a byte budget (the accuracy-vs-memory sweeps hand
  structures budgets, not widths), and
* implements the paper's fingerprint-keyed hashing trick: keys entering
  the vague part are addressed by ``mix(fingerprint, bucket_index)``
  rather than the raw key, because after a candidate-part eviction only
  the fingerprint survives (Sec. III-B "Technical Details").
"""

from __future__ import annotations

from repro.common.errors import ParameterError
from repro.common.hashing import mix64
from repro.common.memory import sizeof_counter
from repro.sketches.count_mean_min import CountMeanMinSketch
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch

#: Recognised vague-part backends: the paper's Fig. 12 variants ("cs",
#: "cms") plus Count-Mean-Min ("cmm"), this reproduction's entry in the
#: paper's future-work question of which sketch fits the vague part.
BACKENDS = ("cs", "cms", "cmm")

_BACKEND_CLASSES = {
    "cs": CountSketch,
    "cms": CountMinSketch,
    "cmm": CountMeanMinSketch,
}


def vague_key(fingerprint: int, bucket_index: int) -> int:
    """Combine a fingerprint and its candidate bucket into a sketch key.

    The paper replaces ``h_i(x)`` with ``h_i(fp + h_b(x))``: as long as
    ``num_buckets * 2**fp_bits`` far exceeds the number of sketch
    counters, accuracy matches hashing the original key.
    """
    return mix64((bucket_index << 20) ^ fingerprint)


class VaguePart:
    """Sketch half of QuantileFilter, sized by rows x columns.

    Parameters
    ----------
    depth:
        Sketch rows ``d`` (paper default 3).
    width:
        Counters per row.
    backend:
        ``"cs"`` (Count Sketch, the paper's choice) or ``"cms"``.
    counter_kind:
        Counter storage width; the paper argues 16-bit (or even 8-bit)
        suffices thanks to sign-hash cancellation.
    """

    __slots__ = ("backend", "sketch")

    def __init__(
        self,
        depth: int = 3,
        width: int = 1024,
        backend: str = "cs",
        counter_kind: str = "int32",
        seed: int = 0,
    ):
        if backend not in BACKENDS:
            raise ParameterError(
                f"unknown vague backend {backend!r}; choose from {BACKENDS}"
            )
        self.backend = backend
        sketch_cls = _BACKEND_CLASSES[backend]
        self.sketch = sketch_cls(
            depth=depth, width=width, counter_kind=counter_kind, seed=seed
        )

    @classmethod
    def from_bytes(
        cls,
        budget_bytes: int,
        depth: int = 3,
        backend: str = "cs",
        counter_kind: str = "int32",
        seed: int = 0,
    ) -> "VaguePart":
        """Build the widest vague part fitting in ``budget_bytes``."""
        per_counter = sizeof_counter(counter_kind)
        width = max(1, budget_bytes // (depth * per_counter))
        return cls(
            depth=depth,
            width=width,
            backend=backend,
            counter_kind=counter_kind,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # delegated operations (all keyed by the combined vague key)
    # ------------------------------------------------------------------
    def update_and_estimate(self, vkey: int, weight: float) -> float:
        """Fused insert + post-insert Qweight estimate (one hash pass)."""
        return self.sketch.update_and_estimate(vkey, weight)

    def update(self, vkey: int, weight: float) -> None:
        """Insert ``weight`` for ``vkey`` without estimating."""
        self.sketch.update(vkey, weight)

    def estimate(self, vkey: int) -> float:
        """Current Qweight estimate of ``vkey``."""
        return self.sketch.estimate(vkey)

    def delete(self, vkey: int, amount: float) -> None:
        """Remove ``amount`` of ``vkey``'s Qweight (reset / promotion)."""
        self.sketch.delete(vkey, amount)

    def clear(self) -> None:
        """Zero every counter (the periodic structure reset)."""
        self.sketch.clear()

    @property
    def depth(self) -> int:
        return self.sketch.depth

    @property
    def width(self) -> int:
        return self.sketch.width

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes."""
        return self.sketch.nbytes
