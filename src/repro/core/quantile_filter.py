"""QuantileFilter: online detection of quantile-outstanding keys.

This is the paper's Algorithm 2.  Each arriving ``<key, value>`` costs a
constant amount of work:

1. Compute the key's fingerprint, candidate bucket and item Qweight.
2. **Candidate hit** — the fingerprint is in its bucket: update that
   entry's exact Qweight; report and reset when it crosses
   ``epsilon / (1 - delta)``.
3. **Candidate vacancy** — store a fresh ``<fp, Qw>`` entry.
4. **Candidate full** — feed the item into the vague part (a Count
   Sketch keyed by ``mix(fp, bucket)``), fused with a post-insert
   estimate.  Report-and-reset on threshold; otherwise run the
   replacement strategy against the bucket's weakest entry and, on a
   win, swap the key into the candidate part (its estimate moves with
   it; the evicted entry's Qweight moves into the vague part).

Per-key criteria, dynamic criteria modification and explicit
query/delete/reset (Sec. III-C) are all supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Set

from repro.common.errors import ParameterError
from repro.common.hashing import FingerprintHasher, canonical_key, mix64
from repro.common.memory import MemoryModel, split_budget
from repro.observability.provenance import ReportProvenance
from repro.core.candidate import CandidatePart
from repro.core.criteria import Criteria
from repro.core.strategies import ReplacementStrategy, make_strategy
from repro.core.vague import VaguePart, vague_key
from repro.quantiles.base import RANK_EPS

#: Default split of the byte budget: candidate:vague = 4:1 (Fig. 11).
DEFAULT_CANDIDATE_FRACTION = 0.8


@dataclass(frozen=True)
class Report:
    """One outstanding-key report.

    Attributes
    ----------
    key:
        The original (un-fingerprinted) key, available because reports
        happen online while the item is in hand.
    qweight:
        The Qweight estimate that triggered the report.
    source:
        ``"candidate"`` or ``"vague"`` — which part detected it.
    item_index:
        0-based position in the stream of the triggering item.
    provenance:
        Filter-state audit context captured at emission
        (:class:`~repro.observability.provenance.ReportProvenance`);
        ``None`` unless the filter was built with
        ``collect_provenance=True``.
    """

    key: Hashable
    qweight: float
    source: str
    item_index: int
    provenance: Optional[ReportProvenance] = None


class QuantileFilter:
    """The two-part online quantile-outstanding-key detector.

    Parameters
    ----------
    criteria:
        Default ``(epsilon, delta, T)`` criteria applied to keys without
        an override.
    memory_bytes:
        Total byte budget, split ``candidate_fraction`` /
        ``1 - candidate_fraction`` between the parts.  Alternatively
        pass explicit ``num_buckets`` and ``vague_width``.
    bucket_size:
        Entries per candidate bucket (paper default 6).
    depth:
        Vague-part sketch rows (paper default 3).
    candidate_fraction:
        Fraction of the budget given to the candidate part (default 0.8,
        the paper's 4:1 split).
    fp_bits:
        Fingerprint width (paper default 16).
    counter_kind:
        Vague-part counter width (``"int32"`` default; ``"int16"`` /
        ``"int8"`` for the space-extreme configurations, ``"float"`` for
        the rounding ablation).
    vague_backend:
        ``"cs"`` (paper) or ``"cms"`` (Fig. 12 variant).
    strategy:
        Replacement strategy name (``"comparative"`` default).
    track_reports:
        Keep the deduplicated set of reported keys in
        :attr:`reported_keys` (the accuracy metric needs it).
    on_report:
        Optional callback invoked with every :class:`Report`.
    collect_provenance:
        Attach a :class:`~repro.observability.provenance.
        ReportProvenance` audit record to every emitted report.  Costs
        one bucket scan per *report* (never per item).
    trace_hook:
        Optional callable ``(kind, key, bucket, qweight, item_index)``
        invoked on structural events — candidate election
        (``"candidate_elect"``), vague→candidate replacement
        (``"candidate_swap"``) and report emission (``"report"``).
        ``None`` (default) costs one predicate per event site; see
        :func:`repro.observability.tracing.attach_filter_tracing`.
    """

    def __init__(
        self,
        criteria: Criteria,
        memory_bytes: Optional[int] = None,
        *,
        num_buckets: Optional[int] = None,
        bucket_size: int = 6,
        depth: int = 3,
        vague_width: Optional[int] = None,
        candidate_fraction: float = DEFAULT_CANDIDATE_FRACTION,
        fp_bits: int = 16,
        counter_kind: str = "int32",
        vague_backend: str = "cs",
        strategy: str = "comparative",
        seed: int = 0,
        track_reports: bool = True,
        on_report: Optional[Callable[[Report], None]] = None,
        collect_provenance: bool = False,
        trace_hook: Optional[Callable] = None,
    ):
        self.criteria = criteria
        if memory_bytes is not None:
            candidate_bytes, vague_bytes = split_budget(
                memory_bytes, candidate_fraction
            )
            self.candidate = CandidatePart.from_bytes(
                candidate_bytes, bucket_size=bucket_size, fp_bits=fp_bits
            )
            self.vague = VaguePart.from_bytes(
                vague_bytes,
                depth=depth,
                backend=vague_backend,
                counter_kind=counter_kind,
                seed=seed,
            )
        else:
            if num_buckets is None or vague_width is None:
                raise ParameterError(
                    "pass either memory_bytes or both num_buckets and vague_width"
                )
            self.candidate = CandidatePart(
                num_buckets, bucket_size=bucket_size, fp_bits=fp_bits
            )
            self.vague = VaguePart(
                depth=depth,
                width=vague_width,
                backend=vague_backend,
                counter_kind=counter_kind,
                seed=seed,
            )
        self._seed = seed
        self._fp_hasher = FingerprintHasher(bits=fp_bits, seed=seed + 7)
        self._bucket_seed = mix64(seed ^ 0x1234_5678_9ABC_DEF0)
        self.strategy: ReplacementStrategy = (
            strategy if isinstance(strategy, ReplacementStrategy)
            else make_strategy(strategy, seed=seed + 13)
        )
        self._key_criteria: Dict[Hashable, Criteria] = {}
        self._on_report = on_report
        self._track_reports = track_reports
        self.reported_keys: Set[Hashable] = set()
        self.items_processed = 0
        self.report_count = 0
        # Instrumentation for the hit-rate discussion in Sec. V-B.
        self.candidate_hits = 0
        self.vague_inserts = 0
        self.swaps = 0
        # Telemetry counters (repro.observability reads these through
        # pull gauges, so the insert path stays unchanged; the report /
        # reset / merge paths are rare enough for plain increments).
        self.candidate_reports = 0
        self.vague_reports = 0
        self.resets = 0
        self.merges = 0
        self.retargets = 0
        self.items_at_last_reset = 0
        self.collect_provenance = collect_provenance
        #: No-op-by-default structural event hook (tracing attaches here).
        self.trace_hook = trace_hook

    # ------------------------------------------------------------------
    # addressing helpers
    # ------------------------------------------------------------------
    def _locate(self, key: Hashable):
        """(key_int, fingerprint, bucket) for a raw key."""
        key_int = canonical_key(key)
        fp = self._fp_hasher.fingerprint(key_int)
        bucket = mix64(key_int ^ self._bucket_seed) % self.candidate.num_buckets
        return key_int, fp, bucket

    def _criteria_for(self, key: Hashable, override: Optional[Criteria]) -> Criteria:
        if override is not None:
            return override
        return self._key_criteria.get(key, self.criteria)

    # ------------------------------------------------------------------
    # the online insert (Algorithm 2)
    # ------------------------------------------------------------------
    def insert(
        self,
        key: Hashable,
        value: float,
        criteria: Optional[Criteria] = None,
    ) -> Optional[Report]:
        """Process one stream item; returns a :class:`Report` if the key
        is detected as outstanding by this item, else ``None``.

        ``criteria`` overrides the per-key/default criteria for this
        item only (the Sec. III-C per-key-criteria mode).
        """
        crit = self._criteria_for(key, criteria)
        item_index = self.items_processed
        self.items_processed += 1

        _, fp, bucket = self._locate(key)
        weight = crit.item_weight(value)
        # Same boundary tolerance as the exact-arithmetic oracle, so a
        # collision-free filter agrees with the ground truth item-for-item.
        report_threshold = crit.report_threshold - RANK_EPS * (
            1 + crit.report_threshold
        )

        # Case 1: fingerprint already a candidate -> exact update.
        slot = self.candidate.find(bucket, fp)
        if slot is not None:
            self.candidate_hits += 1
            new_qw = self.candidate.add_qweight(bucket, slot, weight)
            if new_qw >= report_threshold:
                self.candidate.reset_qweight(bucket, slot)
                return self._emit(
                    key, new_qw, "candidate", item_index, fp, bucket, crit
                )
            return None

        # Case 2: room in the bucket -> become a candidate immediately.
        free = self.candidate.free_slot(bucket)
        if free is not None:
            if self.trace_hook is not None:
                self.trace_hook("candidate_elect", key, bucket, weight,
                                item_index)
            if weight >= report_threshold:
                # A single item can qualify when epsilon = 0.
                self.candidate.set_entry(bucket, free, fp, 0.0)
                return self._emit(
                    key, weight, "candidate", item_index, fp, bucket, crit
                )
            self.candidate.set_entry(bucket, free, fp, weight)
            return None

        # Case 3: bucket full -> vague part, then candidate election.
        self.vague_inserts += 1
        vkey = vague_key(fp, bucket)
        estimate = self.vague.update_and_estimate(vkey, weight)
        report: Optional[Report] = None
        if estimate >= report_threshold:
            self.vague.delete(vkey, estimate)
            report = self._emit(
                key, estimate, "vague", item_index, fp, bucket, crit
            )
            estimate = 0.0

        min_slot, min_qw = self.candidate.min_entry(bucket)
        if self.strategy.should_replace(estimate, min_qw):
            self.swaps += 1
            if self.trace_hook is not None:
                self.trace_hook("candidate_swap", key, bucket, estimate,
                                item_index)
            evicted_fp, evicted_qw = self.candidate.evict(bucket, min_slot)
            # The displaced key's Qweight moves into the vague part ...
            self.vague.update(vague_key(evicted_fp, bucket), evicted_qw)
            # ... and the winner's estimate moves out of it.
            if estimate != 0.0:
                self.vague.delete(vkey, estimate)
            self.candidate.set_entry(bucket, min_slot, fp, estimate)
        return report

    def insert_many(self, keys, values) -> list:
        """Insert a batch of items; returns the emitted reports in order.

        Semantically identical to calling :meth:`insert` per item.  The
        loop lives inside the filter so bulk feeders (pipeline shard
        workers, benchmark drivers) hand over whole arrays: numpy
        inputs are unboxed to plain Python scalars once via ``tolist``
        instead of once per item, and the per-item call dispatches
        through one bound method.
        """
        if hasattr(keys, "tolist"):
            keys = keys.tolist()
        if hasattr(values, "tolist"):
            values = values.tolist()
        insert = self.insert
        return [
            report
            for report in map(insert, keys, values)
            if report is not None
        ]

    def _emit(
        self, key, qweight, source, item_index, fp=0, bucket=0, crit=None
    ) -> Report:
        provenance = None
        if self.collect_provenance:
            provenance = ReportProvenance(
                part=source,
                bucket=bucket,
                fingerprint=fp,
                qweight=qweight,
                threshold=(
                    crit.report_threshold if crit is not None
                    else self.criteria.report_threshold
                ),
                value_threshold=(
                    crit.threshold if crit is not None
                    else self.criteria.threshold
                ),
                bucket_occupancy=self.candidate.bucket_occupancy(bucket),
                replacements=self.swaps,
                items_since_reset=self.items_processed
                - self.items_at_last_reset,
                resets=self.resets,
            )
        report = Report(
            key=key, qweight=qweight, source=source, item_index=item_index,
            provenance=provenance,
        )
        self.report_count += 1
        if self.trace_hook is not None:
            self.trace_hook("report", key, bucket, qweight, item_index)
        if source == "candidate":
            self.candidate_reports += 1
        else:
            self.vague_reports += 1
        if self._track_reports:
            self.reported_keys.add(key)
        if self._on_report is not None:
            self._on_report(report)
        return report

    # ------------------------------------------------------------------
    # query / delete / reset (Sec. III-B additional operations)
    # ------------------------------------------------------------------
    def query(self, key: Hashable) -> float:
        """Current Qweight estimate of ``key``.

        Candidate part first (exact if present); vague part otherwise.
        """
        _, fp, bucket = self._locate(key)
        slot = self.candidate.find(bucket, fp)
        if slot is not None:
            return self.candidate.get_qweight(bucket, slot)
        return self.vague.estimate(vague_key(fp, bucket))

    def delete(self, key: Hashable) -> None:
        """Clear ``key``'s Qweight wherever it lives.

        Candidate hit: zero the counter (the entry stays).  Otherwise:
        subtract the vague estimate from the vague part.
        """
        _, fp, bucket = self._locate(key)
        slot = self.candidate.find(bucket, fp)
        if slot is not None:
            self.candidate.reset_qweight(bucket, slot)
            return
        vkey = vague_key(fp, bucket)
        self.vague.delete(vkey, self.vague.estimate(vkey))

    def reset(self) -> None:
        """Clear both parts (the paper's periodic structure reset).

        Reported-key history and counters are kept; per-key criteria
        overrides are kept too (they are configuration, not state).
        """
        self.candidate.clear()
        self.vague.clear()
        self.resets += 1
        self.items_at_last_reset = self.items_processed

    def retarget(self, threshold: float) -> Criteria:
        """Move the default criteria's value threshold ``T`` in place.

        The adaptive-threshold control path
        (:class:`~repro.detection.threshold.ThresholdControlLoop`):
        only the criteria object is swapped — candidate entries, vague
        counters and reported-key history all survive, so accumulated
        Qweight evidence keeps counting under the new ``T``.  Items
        already absorbed were weighted under the old threshold; the
        deliberate alternative to a destructive rebuild, argued in
        ``docs/adaptive-thresholds.md`` (a :meth:`reset` right after
        retargeting gives clean-slate semantics when preferred).

        Per-key criteria overrides are configuration, not state, and
        are untouched.  Returns the new default criteria.
        """
        self.criteria = self.criteria.with_updates(threshold=float(threshold))
        self.retargets += 1
        return self.criteria

    # ------------------------------------------------------------------
    # per-key criteria (Sec. III-C)
    # ------------------------------------------------------------------
    def set_key_criteria(self, key: Hashable, criteria: Criteria) -> None:
        """Register standing per-key criteria for ``key``."""
        self._key_criteria[key] = criteria

    def modify_criteria(self, key: Hashable, criteria: Criteria) -> None:
        """Change ``key``'s criteria mid-stream (Figs. 13-15).

        Per the paper, the key's accumulated Qweight is deleted so its
        value set effectively resets under the new criteria.
        """
        self.delete(key)
        self._key_criteria[key] = criteria

    def clear_key_criteria(self, key: Hashable) -> None:
        """Drop ``key``'s override, returning it to the default criteria."""
        self._key_criteria.pop(key, None)

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileFilter") -> None:
        """Fold another shard's filter into this one.

        Both filters must be configured identically (same dimensions,
        fingerprint width, vague backend and **seed** — the shards must
        share hash families for their cells to correspond).  After the
        merge, this filter approximates the one that would have seen
        both shards' streams:

        1. Vague parts merge counter-wise (Count Sketch is linear).
        2. Candidate entries combine per bucket: matching fingerprints
           sum their Qweights; distinct fingerprints fill free slots,
           and when a bucket overflows the smallest Qweights spill into
           the vague part (the normal eviction path).
        3. For every surviving candidate entry, any residue the *other*
           shard had accumulated for that key in its vague part is
           pulled out of the merged vague part and added to the entry,
           restoring the one-part-per-key invariant.

        Reported-key histories union; instrumentation counters sum.
        Like the paper's swap step, step 3 moves *estimates*, so merged
        Qweights carry vague-part noise for keys that were split across
        parts on different shards.
        """
        self._check_merge_compatible(other)
        self.vague.sketch.merge(other.vague.sketch)

        for bucket in range(self.candidate.num_buckets):
            for slot in range(other.candidate.bucket_size):
                other_fp = int(other.candidate._fps[bucket, slot])
                if other_fp == 0:
                    continue
                other_qw = float(other.candidate._qws[bucket, slot])
                self._merge_candidate_entry(bucket, other_fp, other_qw)
            # Restore exclusivity: pull each surviving entry's vague
            # residue (now containing the other shard's mass) into the
            # exact counter.
            for slot in range(self.candidate.bucket_size):
                fp = int(self.candidate._fps[bucket, slot])
                if fp == 0:
                    continue
                vkey = vague_key(fp, bucket)
                residue = self.vague.estimate(vkey)
                if residue != 0.0:
                    self.vague.delete(vkey, residue)
                    self.candidate.add_qweight(bucket, slot, residue)

        self.items_processed += other.items_processed
        self.report_count += other.report_count
        self.candidate_hits += other.candidate_hits
        self.vague_inserts += other.vague_inserts
        self.swaps += other.swaps
        self.candidate_reports += other.candidate_reports
        self.vague_reports += other.vague_reports
        self.resets += other.resets
        self.retargets += other.retargets
        self.merges += other.merges + 1
        self.reported_keys |= other.reported_keys
        for key, criteria in other._key_criteria.items():
            self._key_criteria.setdefault(key, criteria)

    def _merge_candidate_entry(self, bucket: int, fp: int, qw: float) -> None:
        slot = self.candidate.find(bucket, fp)
        if slot is not None:
            self.candidate.add_qweight(bucket, slot, qw)
            return
        free = self.candidate.free_slot(bucket)
        if free is not None:
            self.candidate.set_entry(bucket, free, fp, qw)
            return
        min_slot, min_qw = self.candidate.min_entry(bucket)
        if qw > min_qw:
            evicted_fp, evicted_qw = self.candidate.evict(bucket, min_slot)
            self.vague.update(vague_key(evicted_fp, bucket), evicted_qw)
            self.candidate.set_entry(bucket, min_slot, fp, qw)
        else:
            self.vague.update(vague_key(fp, bucket), qw)

    def _check_merge_compatible(self, other: "QuantileFilter") -> None:
        checks = [
            ("num_buckets", self.candidate.num_buckets, other.candidate.num_buckets),
            ("bucket_size", self.candidate.bucket_size, other.candidate.bucket_size),
            ("fp_bits", self.candidate.fp_bits, other.candidate.fp_bits),
            ("vague_depth", self.vague.depth, other.vague.depth),
            ("vague_width", self.vague.width, other.vague.width),
            ("vague_backend", self.vague.backend, other.vague.backend),
            ("seed", self._seed, other._seed),
            ("criteria", self.criteria, other.criteria),
        ]
        mismatched = [
            f"{name} ({mine!r} != {theirs!r})"
            for name, mine, theirs in checks
            if mine != theirs
        ]
        if mismatched:
            raise ParameterError(
                "cannot merge incompatible QuantileFilters — mismatched "
                + ", ".join(mismatched)
                + "; shards must share geometry, fingerprint width, vague "
                "backend, seed and default criteria"
            )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Modelled total memory footprint in bytes."""
        return self.candidate.nbytes + self.vague.nbytes

    def memory_model(self) -> MemoryModel:
        """Itemised memory breakdown (candidate vs vague)."""
        model = MemoryModel()
        model.add("candidate", self.candidate.nbytes)
        model.add("vague", self.vague.nbytes)
        return model

    def top_candidates(self, k: int = 10) -> list:
        """The ``k`` candidate entries with the highest Qweights.

        Returns ``[(fingerprint, bucket, qweight), ...]`` sorted by
        Qweight descending — the keys currently *closest to reporting*.
        Only fingerprints are available (the candidate part does not
        store keys); correlate via :class:`~repro.detection.reports.ReportLog`
        or by probing suspects with :meth:`query`.  Useful as a
        dashboard of "warming" anomalies between reports.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        entries = []
        fps = self.candidate._fps
        qws = self.candidate._qws
        for bucket in range(self.candidate.num_buckets):
            for slot in range(self.candidate.bucket_size):
                fp = int(fps[bucket, slot])
                if fp:
                    entries.append((fp, bucket, float(qws[bucket, slot])))
        entries.sort(key=lambda e: e[2], reverse=True)
        return entries[:k]

    def candidate_hit_rate(self) -> float:
        """Fraction of inserts resolved entirely in the candidate part."""
        if self.items_processed == 0:
            return 0.0
        return self.candidate_hits / self.items_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileFilter(nbytes={self.nbytes}, "
            f"buckets={self.candidate.num_buckets}x{self.candidate.bucket_size}, "
            f"vague={self.vague.depth}x{self.vague.width} "
            f"[{self.vague.backend}], strategy={self.strategy.name!r})"
        )
