"""QuantileFilter — the paper's primary contribution.

Public surface:

* :class:`~repro.core.criteria.Criteria` — the ``(epsilon, delta, T)``
  filtering criteria and the Qweight conversion derived from them.
* :class:`~repro.core.quantile_filter.QuantileFilter` — the two-part
  (candidate + vague) online detector.
* :class:`~repro.core.naive.NaiveDualCSketch` — the paper's Section II-D
  strawman, kept as a baseline.
* :class:`~repro.core.vectorized.BatchQuantileFilter` — numpy-accelerated
  batch engine with identical semantics, used for throughput runs.
* :class:`~repro.core.multi_criteria.MultiCriteriaFilter` — several
  criteria per key via key-tuple expansion (Sec. III-C).
"""

from repro.core.criteria import Criteria
from repro.core.qweight import (
    exact_qweight,
    quantile_exceeds_threshold,
    qweight_exceeds_report_threshold,
)
from repro.core.candidate import CandidatePart
from repro.core.vague import VaguePart
from repro.core.strategies import (
    ReplacementStrategy,
    ComparativeReplacement,
    ProbabilisticReplacement,
    ForcefulReplacement,
    make_strategy,
)
from repro.core.quantile_filter import QuantileFilter, Report
from repro.core.naive import NaiveDualCSketch
from repro.core.vectorized import BatchQuantileFilter
from repro.core.multi_criteria import MultiCriteriaFilter
from repro.core.windowed import WindowedQuantileFilter
from repro.core.persistence import save_filter, load_filter
from repro.core.inspect import describe, health_warnings

__all__ = [
    "Criteria",
    "exact_qweight",
    "quantile_exceeds_threshold",
    "qweight_exceeds_report_threshold",
    "CandidatePart",
    "VaguePart",
    "ReplacementStrategy",
    "ComparativeReplacement",
    "ProbabilisticReplacement",
    "ForcefulReplacement",
    "make_strategy",
    "QuantileFilter",
    "Report",
    "NaiveDualCSketch",
    "BatchQuantileFilter",
    "MultiCriteriaFilter",
    "WindowedQuantileFilter",
    "save_filter",
    "load_filter",
    "describe",
    "health_warnings",
]
