"""Exact Qweight arithmetic and the conversion lemma, in checkable form.

These pure functions implement both sides of the paper's Section III-A
equivalence so tests can verify it mechanically:

    ``q_{epsilon,delta}(V) > T``  <=>  ``Qw(V) >= epsilon / (1 - delta)``

They are also what the ground-truth oracle uses: note that the quantile
side only depends on ``(n, count_above_T)``, never on the actual sorted
values, which makes exact online detection cheap.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.criteria import Criteria
from repro.quantiles.base import RANK_EPS, paper_quantile_index


def exact_qweight(values: Iterable[float], criteria: Criteria) -> float:
    """Sum of per-item Qweights over ``values`` (paper's Qw definition)."""
    return sum(criteria.item_weight(v) for v in values)


def qweight_from_counts(n: int, above: int, criteria: Criteria) -> float:
    """Qweight from aggregate counts: ``above`` items over T, rest under."""
    return above * criteria.positive_weight - (n - above)


def quantile_exceeds_threshold(values: Sequence[float], criteria: Criteria) -> bool:
    """Direct Definition 3/4 check: is ``q_{epsilon,delta}(values) > T``?

    Sorts the values and inspects the index ``floor(delta*n - epsilon)``;
    a negative index means the quantile is ``-inf`` (never exceeds).
    """
    ordered = sorted(values)
    index = paper_quantile_index(len(ordered), criteria.delta, criteria.epsilon)
    if index is None:
        return False
    return ordered[index] > criteria.threshold


def counts_exceed_threshold(n: int, above: int, criteria: Criteria) -> bool:
    """Count-only form of :func:`quantile_exceeds_threshold`.

    ``q_{eps,delta} > T`` iff the number of values <= T fits strictly
    below the quantile index, i.e. ``n - above <= floor(delta*n - eps)``
    with a non-negative index.
    """
    index = math.floor(criteria.delta * n - criteria.epsilon + RANK_EPS)
    if index < 0:
        return False
    return (n - above) <= index


def qweight_exceeds_report_threshold(values: Iterable[float], criteria: Criteria) -> bool:
    """Qweight side of the conversion: ``Qw >= epsilon / (1 - delta)``.

    The paper proves this is equivalent to
    :func:`quantile_exceeds_threshold`; the property tests exercise that
    equivalence over random multisets.  The comparison tolerates
    :data:`~repro.quantiles.base.RANK_EPS` of floating-point slack so
    exact-boundary cases resolve the same way on both sides.
    """
    threshold = criteria.report_threshold - RANK_EPS * (1 + criteria.report_threshold)
    return exact_qweight(values, criteria) >= threshold


class ExactQweightTracker:
    """Streaming exact Qweight for one key with reset-on-report semantics.

    This is the per-key state of the ground-truth oracle: it keeps the
    pair ``(n, above)`` for the values seen since the last report, feeds
    each arrival through the Definition 4 rule, and resets when it
    reports.
    """

    __slots__ = ("criteria", "n", "above")

    def __init__(self, criteria: Criteria):
        self.criteria = criteria
        self.n = 0
        self.above = 0

    def offer(self, value: float) -> bool:
        """Process one value; returns True when the key must be reported.

        Definition 4: the arriving value joins ``V_x`` and the
        post-insert quantile is tested; on a report ``V_x`` resets.
        """
        self.n += 1
        if value > self.criteria.threshold:
            self.above += 1
        if counts_exceed_threshold(self.n, self.above, self.criteria):
            self.reset()
            return True
        return False

    @property
    def qweight(self) -> float:
        """Exact Qweight of the values since the last report."""
        return qweight_from_counts(self.n, self.above, self.criteria)

    def reset(self) -> None:
        """Empty the tracked value set (after a report or criteria change)."""
        self.n = 0
        self.above = 0
