"""Checkpoint a QuantileFilter's state and restore it — in memory or on disk.

A monitor process restarting should not forget every key's accumulated
Qweight, so the filter's full state — configuration, candidate entries,
vague counters, per-key criteria overrides, instrumentation counters and
(when serialisable) the reported-key history — round-trips through one
compressed ``.npz`` file (:func:`save_filter` / :func:`load_filter`).

The same capture is useful *without* touching disk: the flight recorder
(:mod:`repro.observability.recorder`) snapshots filters at chunk
boundaries and ships the state inside incident bundles.  The in-memory
layer is therefore the primitive here:

* :func:`filter_state` / :func:`restore_filter` — scalar
  :class:`~repro.core.quantile_filter.QuantileFilter`;
* :func:`batch_filter_state` / :func:`restore_batch_filter` — the
  numpy :class:`~repro.core.vectorized.BatchQuantileFilter` engine;
* :func:`engine_state` / :func:`restore_engine` — engine-dispatching
  wrappers (the state dict carries an ``engine`` tag);
* :func:`state_to_jsonable` / :func:`state_from_jsonable` — lossless
  JSON encoding of a state dict (floats survive exactly: Python's JSON
  round-trips the shortest-repr form bit-identically);
* :func:`state_fingerprint` — canonical sha256 over a filter's state,
  the equality check deterministic replay asserts.

Restoration rebuilds the filter with the *same seed and dimensions*, so
all hash families address identical cells, then overwrites the arrays.
Two RNG streams are not checkpointed: the probabilistic-rounding RNG and
the probabilistic-replacement RNG.  Neither affects any stored estimate;
only future random tie-breaks diverge from a never-checkpointed run
(the default ``comparative`` strategy uses neither, so its replays are
bit-identical).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.common.errors import TraceFormatError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _criteria_to_dict(criteria: Criteria) -> dict:
    return {
        "delta": criteria.delta,
        "threshold": criteria.threshold,
        "epsilon": criteria.epsilon,
    }


def _criteria_from_dict(payload: dict) -> Criteria:
    return Criteria(
        delta=payload["delta"],
        threshold=payload["threshold"],
        epsilon=payload["epsilon"],
    )


def _json_safe_key(key) -> list:
    """Encode a reported key as a (type-tag, value) pair, or raise."""
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise TypeError(f"key {key!r} of type {type(key).__name__}")
    return ["int" if isinstance(key, int) else "str", key]


def _decode_key(tag: str, key):
    return key if tag == "str" else int(key)


# ----------------------------------------------------------------------
# in-memory state: scalar engine
# ----------------------------------------------------------------------
def filter_state(qf: QuantileFilter, include_history: bool = True) -> dict:
    """Capture ``qf``'s full state as ``{"meta": ..., "arrays": ...}``.

    ``include_history=True`` also stores the deduplicated reported-key
    set and the per-key criteria overrides; both require keys to be
    plain ints or strings (tuple keys raise ``TraceFormatError`` —
    capture with ``include_history=False`` in that case).
    """
    meta = {
        "version": _FORMAT_VERSION,
        "engine": "scalar",
        "criteria": _criteria_to_dict(qf.criteria),
        "num_buckets": qf.candidate.num_buckets,
        "bucket_size": qf.candidate.bucket_size,
        "fp_bits": qf.candidate.fp_bits,
        "depth": qf.vague.depth,
        "vague_width": qf.vague.width,
        "vague_backend": qf.vague.backend,
        "counter_kind": qf.vague.sketch.counters.kind,
        "strategy": qf.strategy.name,
        "seed": qf._seed,
        "items_processed": qf.items_processed,
        "report_count": qf.report_count,
        "candidate_hits": qf.candidate_hits,
        "vague_inserts": qf.vague_inserts,
        "swaps": qf.swaps,
        "candidate_reports": qf.candidate_reports,
        "vague_reports": qf.vague_reports,
        "resets": qf.resets,
        "merges": qf.merges,
        "retargets": getattr(qf, "retargets", 0),
        "items_at_last_reset": getattr(qf, "items_at_last_reset", 0),
        "track_reports": qf._track_reports,
        "has_history": bool(include_history),
    }
    if include_history:
        try:
            meta["reported_keys"] = sorted(
                (_json_safe_key(key) for key in qf.reported_keys), key=repr
            )
            meta["key_criteria"] = sorted(
                (
                    [_json_safe_key(key), _criteria_to_dict(crit)]
                    for key, crit in qf._key_criteria.items()
                ),
                key=repr,
            )
        except TypeError as exc:
            raise TraceFormatError(
                f"cannot serialise history ({exc}); "
                "capture with include_history=False"
            ) from None
    return {
        "meta": meta,
        "arrays": {
            "candidate_fps": qf.candidate._fps.copy(),
            "candidate_qws": qf.candidate._qws.copy(),
            "vague_counters": np.array(qf.vague.sketch.counters.data),
        },
    }


def restore_filter(state: dict) -> QuantileFilter:
    """Rebuild a scalar filter from a :func:`filter_state` capture."""
    meta = state["meta"]
    arrays = state["arrays"]
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported checkpoint version {meta.get('version')!r}"
        )
    qf = QuantileFilter(
        _criteria_from_dict(meta["criteria"]),
        num_buckets=meta["num_buckets"],
        bucket_size=meta["bucket_size"],
        fp_bits=meta["fp_bits"],
        depth=meta["depth"],
        vague_width=meta["vague_width"],
        vague_backend=meta["vague_backend"],
        counter_kind=meta["counter_kind"],
        strategy=meta["strategy"],
        seed=meta["seed"],
        track_reports=meta["track_reports"],
    )
    qf.candidate._fps[...] = arrays["candidate_fps"]
    qf.candidate._qws[...] = arrays["candidate_qws"]
    qf.vague.sketch.counters.data[...] = arrays["vague_counters"]
    if meta["vague_backend"] == "cmm":
        # Rebuild the row totals the correction uses.
        qf.vague.sketch._row_totals = [
            float(row.sum()) for row in arrays["vague_counters"]
        ]
    qf.items_processed = meta["items_processed"]
    qf.report_count = meta["report_count"]
    qf.candidate_hits = meta["candidate_hits"]
    qf.vague_inserts = meta["vague_inserts"]
    qf.swaps = meta["swaps"]
    # Telemetry counters; .get() keeps pre-observability checkpoints loadable.
    qf.candidate_reports = meta.get("candidate_reports", 0)
    qf.vague_reports = meta.get("vague_reports", 0)
    qf.resets = meta.get("resets", 0)
    qf.merges = meta.get("merges", 0)
    qf.retargets = meta.get("retargets", 0)
    qf.items_at_last_reset = meta.get("items_at_last_reset", 0)
    if meta.get("has_history"):
        qf.reported_keys = {
            _decode_key(tag, key)
            for tag, key in meta.get("reported_keys", [])
        }
        for encoded_key, crit in meta.get("key_criteria", []):
            tag, key = encoded_key
            qf._key_criteria[_decode_key(tag, key)] = (
                _criteria_from_dict(crit)
            )
    return qf


# ----------------------------------------------------------------------
# in-memory state: batch engine
# ----------------------------------------------------------------------
def batch_filter_state(bf) -> dict:
    """Capture a :class:`~repro.core.vectorized.BatchQuantileFilter`.

    Same shape as :func:`filter_state`; the batch engine's vague
    counters are Python-float rows, stored as one float64 plane.
    """
    meta = {
        "version": _FORMAT_VERSION,
        "engine": "batch",
        "criteria": _criteria_to_dict(bf.criteria),
        "num_buckets": bf.num_buckets,
        "bucket_size": bf.bucket_size,
        "fp_bits": bf.fp_bits,
        "depth": bf.depth,
        "vague_width": bf.width,
        "strategy": bf.strategy.name,
        "seed": bf.seed,
        "chunk_size": bf.chunk_size,
        "vectorize": bf.vectorize,
        "items_processed": bf.items_processed,
        "report_count": bf.report_count,
        "candidate_hits": bf.candidate_hits,
        "vague_inserts": bf.vague_inserts,
        "swaps": bf.swaps,
        "candidate_reports": bf.candidate_reports,
        "vague_reports": bf.vague_reports,
        "retargets": bf.retargets,
        "stats_tallies": bool(bf.stats_tallies),
        "reported_keys": sorted(int(key) for key in bf.reported_keys),
    }
    return {
        "meta": meta,
        "arrays": {
            "candidate_fps": bf._cand_fps.copy(),
            "candidate_qws": bf._cand_qws.copy(),
            "vague_rows": np.array(bf._rows, dtype=np.float64),
        },
    }


def restore_batch_filter(state: dict):
    """Rebuild a batch filter from a :func:`batch_filter_state` capture."""
    from repro.core.vectorized import BatchQuantileFilter

    meta = state["meta"]
    arrays = state["arrays"]
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported checkpoint version {meta.get('version')!r}"
        )
    bf = BatchQuantileFilter(
        _criteria_from_dict(meta["criteria"]),
        num_buckets=meta["num_buckets"],
        vague_width=meta["vague_width"],
        bucket_size=meta["bucket_size"],
        depth=meta["depth"],
        fp_bits=meta["fp_bits"],
        strategy=meta["strategy"],
        seed=meta["seed"],
        chunk_size=meta["chunk_size"],
        vectorize=meta["vectorize"],
    )
    bf._cand_fps[...] = arrays["candidate_fps"]
    bf._cand_qws[...] = arrays["candidate_qws"]
    bf._rows = [list(row) for row in arrays["vague_rows"].tolist()]
    bf.items_processed = meta["items_processed"]
    bf.report_count = meta["report_count"]
    bf.candidate_hits = meta["candidate_hits"]
    bf.vague_inserts = meta["vague_inserts"]
    bf.swaps = meta["swaps"]
    bf.candidate_reports = meta["candidate_reports"]
    bf.vague_reports = meta["vague_reports"]
    bf.retargets = meta["retargets"]
    bf.stats_tallies = meta["stats_tallies"]
    bf.reported_keys = set(meta["reported_keys"])
    return bf


# ----------------------------------------------------------------------
# engine dispatch + JSON encoding + fingerprint
# ----------------------------------------------------------------------
def engine_state(filt, include_history: bool = True) -> dict:
    """Capture any supported engine; the state carries its engine tag."""
    if isinstance(filt, QuantileFilter):
        return filter_state(filt, include_history=include_history)
    from repro.core.vectorized import BatchQuantileFilter

    if isinstance(filt, BatchQuantileFilter):
        return batch_filter_state(filt)
    raise TraceFormatError(
        f"cannot capture state of {type(filt).__name__}; expected "
        "QuantileFilter or BatchQuantileFilter"
    )


def restore_engine(state: dict):
    """Rebuild whichever engine a state dict was captured from."""
    engine = state["meta"].get("engine", "scalar")
    if engine == "scalar":
        return restore_filter(state)
    if engine == "batch":
        return restore_batch_filter(state)
    raise TraceFormatError(f"unknown engine tag {engine!r} in state")


def state_to_jsonable(state: dict) -> dict:
    """Encode a state dict as plain JSON types, losslessly.

    numpy arrays become ``{"dtype", "shape", "data"}`` with nested-list
    data; Python's float repr (used by ``json``) round-trips float64
    bit-identically, and uint64 fingerprints fit arbitrary-precision
    JSON ints.
    """
    return {
        "meta": state["meta"],
        "arrays": {
            name: {
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "data": array.tolist(),
            }
            for name, array in state["arrays"].items()
        },
    }


def state_from_jsonable(payload: dict) -> dict:
    """Inverse of :func:`state_to_jsonable`."""
    return {
        "meta": payload["meta"],
        "arrays": {
            name: np.array(
                encoded["data"], dtype=np.dtype(encoded["dtype"])
            ).reshape(encoded["shape"])
            for name, encoded in payload["arrays"].items()
        },
    }


def state_fingerprint(filt) -> str:
    """Canonical sha256 over a filter's full state.

    Two filters with equal fingerprints hold bit-identical candidate
    planes, vague counters, counters and (when serialisable) history —
    the equality deterministic replay asserts.  Falls back to
    history-free capture when keys are not JSON-encodable.
    """
    try:
        state = engine_state(filt, include_history=True)
    except TraceFormatError:
        state = engine_state(filt, include_history=False)
    canonical = json.dumps(
        state_to_jsonable(state), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# on-disk checkpoints (npz)
# ----------------------------------------------------------------------
def save_filter(
    qf: QuantileFilter, path: PathLike, include_history: bool = True
) -> None:
    """Checkpoint ``qf`` to ``path`` (compressed npz).

    ``include_history=True`` also stores the deduplicated reported-key
    set and the per-key criteria overrides; both require keys to be
    plain ints or strings (tuple keys raise ``TraceFormatError`` —
    checkpoint with ``include_history=False`` in that case).
    """
    state = filter_state(qf, include_history=include_history)
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(
            json.dumps(state["meta"]).encode("utf-8"), dtype=np.uint8
        ),
        **state["arrays"],
    )


def load_filter(path: PathLike) -> QuantileFilter:
    """Restore a filter checkpointed by :func:`save_filter`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            state = {
                "meta": json.loads(archive["meta"].tobytes().decode("utf-8")),
                "arrays": {
                    "candidate_fps": archive["candidate_fps"],
                    "candidate_qws": archive["candidate_qws"],
                    "vague_counters": archive["vague_counters"],
                },
            }
    except (KeyError, OSError, ValueError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        return restore_filter(state)
    except TraceFormatError as exc:
        raise TraceFormatError(f"{exc} in {path}") from None
