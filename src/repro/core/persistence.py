"""Checkpoint a QuantileFilter to disk and restore it.

A monitor process restarting should not forget every key's accumulated
Qweight, so the filter's full state — configuration, candidate entries,
vague counters, per-key criteria overrides, instrumentation counters and
(when serialisable) the reported-key history — round-trips through one
compressed ``.npz`` file.

Restoration rebuilds the filter with the *same seed and dimensions*, so
all hash families address identical cells, then overwrites the arrays.
Two RNG streams are not checkpointed: the probabilistic-rounding RNG and
the probabilistic-replacement RNG.  Neither affects any stored estimate;
only future random tie-breaks diverge from a never-checkpointed run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.common.errors import TraceFormatError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _criteria_to_dict(criteria: Criteria) -> dict:
    return {
        "delta": criteria.delta,
        "threshold": criteria.threshold,
        "epsilon": criteria.epsilon,
    }


def _criteria_from_dict(payload: dict) -> Criteria:
    return Criteria(
        delta=payload["delta"],
        threshold=payload["threshold"],
        epsilon=payload["epsilon"],
    )


def _json_safe_key(key) -> list:
    """Encode a reported key as a (type-tag, value) pair, or raise."""
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise TypeError(f"key {key!r} of type {type(key).__name__}")
    return ["int" if isinstance(key, int) else "str", key]


def save_filter(
    qf: QuantileFilter, path: PathLike, include_history: bool = True
) -> None:
    """Checkpoint ``qf`` to ``path`` (compressed npz).

    ``include_history=True`` also stores the deduplicated reported-key
    set and the per-key criteria overrides; both require keys to be
    plain ints or strings (tuple keys raise ``TraceFormatError`` —
    checkpoint with ``include_history=False`` in that case).
    """
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "criteria": _criteria_to_dict(qf.criteria),
        "num_buckets": qf.candidate.num_buckets,
        "bucket_size": qf.candidate.bucket_size,
        "fp_bits": qf.candidate.fp_bits,
        "depth": qf.vague.depth,
        "vague_width": qf.vague.width,
        "vague_backend": qf.vague.backend,
        "counter_kind": qf.vague.sketch.counters.kind,
        "strategy": qf.strategy.name,
        "seed": qf._seed,
        "items_processed": qf.items_processed,
        "report_count": qf.report_count,
        "candidate_hits": qf.candidate_hits,
        "vague_inserts": qf.vague_inserts,
        "swaps": qf.swaps,
        "candidate_reports": qf.candidate_reports,
        "vague_reports": qf.vague_reports,
        "resets": qf.resets,
        "merges": qf.merges,
        "track_reports": qf._track_reports,
        "has_history": bool(include_history),
    }
    if include_history:
        try:
            meta["reported_keys"] = [
                _json_safe_key(key) for key in qf.reported_keys
            ]
            meta["key_criteria"] = [
                [_json_safe_key(key), _criteria_to_dict(crit)]
                for key, crit in qf._key_criteria.items()
            ]
        except TypeError as exc:
            raise TraceFormatError(
                f"cannot serialise history ({exc}); "
                "checkpoint with include_history=False"
            ) from None

    np.savez_compressed(
        path,
        candidate_fps=qf.candidate._fps,
        candidate_qws=qf.candidate._qws,
        vague_counters=qf.vague.sketch.counters.data,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_filter(path: PathLike) -> QuantileFilter:
    """Restore a filter checkpointed by :func:`save_filter`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            candidate_fps = archive["candidate_fps"]
            candidate_qws = archive["candidate_qws"]
            vague_counters = archive["vague_counters"]
            meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
    except (KeyError, OSError, ValueError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"cannot read checkpoint {path}: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported checkpoint version {meta.get('version')!r} in {path}"
        )

    qf = QuantileFilter(
        _criteria_from_dict(meta["criteria"]),
        num_buckets=meta["num_buckets"],
        bucket_size=meta["bucket_size"],
        fp_bits=meta["fp_bits"],
        depth=meta["depth"],
        vague_width=meta["vague_width"],
        vague_backend=meta["vague_backend"],
        counter_kind=meta["counter_kind"],
        strategy=meta["strategy"],
        seed=meta["seed"],
        track_reports=meta["track_reports"],
    )
    qf.candidate._fps[...] = candidate_fps
    qf.candidate._qws[...] = candidate_qws
    qf.vague.sketch.counters.data[...] = vague_counters
    if meta["vague_backend"] == "cmm":
        # Rebuild the row totals the correction uses.
        qf.vague.sketch._row_totals = [
            float(row.sum()) for row in vague_counters
        ]
    qf.items_processed = meta["items_processed"]
    qf.report_count = meta["report_count"]
    qf.candidate_hits = meta["candidate_hits"]
    qf.vague_inserts = meta["vague_inserts"]
    qf.swaps = meta["swaps"]
    # Telemetry counters; .get() keeps pre-observability checkpoints loadable.
    qf.candidate_reports = meta.get("candidate_reports", 0)
    qf.vague_reports = meta.get("vague_reports", 0)
    qf.resets = meta.get("resets", 0)
    qf.merges = meta.get("merges", 0)
    if meta.get("has_history"):
        qf.reported_keys = {
            key if tag == "str" else int(key)
            for tag, key in meta.get("reported_keys", [])
        }
        for encoded_key, crit in meta.get("key_criteria", []):
            tag, key = encoded_key
            qf._key_criteria[key if tag == "str" else int(key)] = (
                _criteria_from_dict(crit)
            )
    return qf
