"""Structure introspection: human-readable state dumps for debugging.

When a deployment misbehaves — recall dropping, counters saturating,
election churn — the first question is "what does the structure look
like right now?".  :func:`describe` renders a QuantileFilter's state as
a text report: part sizes, occupancy, hit rates, counter statistics,
the top candidate entries, and health warnings derived from the
monitoring thresholds documented in ``docs/operations.md``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.quantile_filter import QuantileFilter


def health_warnings(qf: QuantileFilter) -> List[str]:
    """Heuristic warnings about a filter's current state.

    Empty list = nothing suspicious.  Thresholds follow the operations
    guide: low candidate hit rate, high counter saturation, explosive
    election churn, or a candidate part packed solid.
    """
    warnings: List[str] = []
    if qf.items_processed >= 1_000:
        hit_rate = qf.candidate_hit_rate()
        if hit_rate < 0.2:
            warnings.append(
                f"candidate hit rate {hit_rate:.1%} is low — the hot-key "
                "population exceeds the candidate capacity; grow "
                "num_buckets or the memory budget"
            )
        saturation = qf.vague.sketch.counters.saturation_fraction()
        if saturation > 0.2:
            warnings.append(
                f"{saturation:.1%} of vague counters are saturated — widen "
                "counters (counter_kind) or shorten the reset window"
            )
        swap_rate = qf.swaps / qf.items_processed
        if swap_rate > 0.2:
            warnings.append(
                f"election churn {swap_rate:.1%} per item — bucket "
                "minimums keep losing; more buckets would stabilise the "
                "candidate set"
            )
    if qf.candidate.occupancy() > 0.98 and qf.candidate.entry_count() > 10:
        warnings.append(
            "candidate part is packed solid — new keys can only enter by "
            "eviction"
        )
    return warnings


def describe(qf: QuantileFilter, top_k: int = 5) -> str:
    """Render a filter's current state as a multi-line text report."""
    lines: List[str] = []
    lines.append(
        f"QuantileFilter — {qf.nbytes:,} modelled bytes "
        f"({qf.candidate.nbytes:,} candidate + {qf.vague.nbytes:,} vague)"
    )
    lines.append(
        f"criteria: delta={qf.criteria.delta} T={qf.criteria.threshold} "
        f"epsilon={qf.criteria.epsilon} "
        f"(report at Qweight >= {qf.criteria.report_threshold:g})"
    )
    lines.append(
        f"candidate: {qf.candidate.num_buckets} buckets x "
        f"{qf.candidate.bucket_size} entries, "
        f"{qf.candidate.fp_bits}-bit fingerprints, "
        f"occupancy {qf.candidate.occupancy():.1%} "
        f"({qf.candidate.entry_count()} entries)"
    )
    counters = qf.vague.sketch.counters
    data = counters.data
    lines.append(
        f"vague [{qf.vague.backend}]: {qf.vague.depth} x {qf.vague.width} "
        f"{counters.kind} counters, "
        f"saturation {counters.saturation_fraction():.2%}, "
        f"|counter| mean {float(np.abs(data).mean()):.2f} "
        f"max {float(np.abs(data).max()):.0f}"
    )
    lines.append(
        f"traffic: {qf.items_processed:,} items, "
        f"{qf.report_count} reports ({len(qf.reported_keys)} distinct keys), "
        f"hit rate {qf.candidate_hit_rate():.1%}, "
        f"{qf.vague_inserts:,} vague inserts, {qf.swaps:,} swaps"
    )
    top = qf.top_candidates(k=top_k)
    if top:
        lines.append(f"top {len(top)} candidate Qweights:")
        for fp, bucket, qweight in top:
            lines.append(
                f"  fp=0x{fp:04x} bucket={bucket} Qweight={qweight:.1f}"
            )
    warnings = health_warnings(qf)
    if warnings:
        lines.append("warnings:")
        lines.extend(f"  ! {w}" for w in warnings)
    else:
        lines.append("health: ok")
    return "\n".join(lines)
