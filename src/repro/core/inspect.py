"""Structure introspection: state dumps and structural probes.

When a deployment misbehaves — recall dropping, counters saturating,
election churn — the first question is "what does the structure look
like right now?".  :func:`describe` renders a QuantileFilter's state as
a text report: part sizes, occupancy, hit rates, counter statistics,
the top candidate entries, and health warnings derived from the
monitoring thresholds documented in ``docs/operations.md``.

:func:`structural_probe` is the machine-readable counterpart: one flat
dict of geometry and derived accuracy estimators (fingerprint-collision
probability, vague-part noise standard deviation) that the health model
in :mod:`repro.observability.health` consumes.  It accepts any filter
engine — scalar, batch, or windowed — and degrades gracefully by
omitting fields the engine does not track.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.quantile_filter import QuantileFilter


def health_warnings(qf: QuantileFilter) -> List[str]:
    """Heuristic warnings about a filter's current state.

    Empty list = nothing suspicious.  Thresholds follow the operations
    guide: low candidate hit rate, high counter saturation, explosive
    election churn, or a candidate part packed solid.
    """
    warnings: List[str] = []
    if qf.items_processed >= 1_000:
        hit_rate = qf.candidate_hit_rate()
        if hit_rate < 0.2:
            warnings.append(
                f"candidate hit rate {hit_rate:.1%} is low — the hot-key "
                "population exceeds the candidate capacity; grow "
                "num_buckets or the memory budget"
            )
        saturation = qf.vague.sketch.counters.saturation_fraction()
        if saturation > 0.2:
            warnings.append(
                f"{saturation:.1%} of vague counters are saturated — widen "
                "counters (counter_kind) or shorten the reset window"
            )
        swap_rate = qf.swaps / qf.items_processed
        if swap_rate > 0.2:
            warnings.append(
                f"election churn {swap_rate:.1%} per item — bucket "
                "minimums keep losing; more buckets would stabilise the "
                "candidate set"
            )
    if qf.candidate.occupancy() > 0.98 and qf.candidate.entry_count() > 10:
        warnings.append(
            "candidate part is packed solid — new keys can only enter by "
            "eviction"
        )
    return warnings


def _vague_noise_std(counters: np.ndarray, width: int) -> float:
    """Count-Sketch noise scale from the live counter planes.

    A point query's error is (up to constants) a zero-mean variable
    with variance ``F2 / width`` per row, where ``F2`` is the row's sum
    of squared counters — estimating ``F2`` by the row's own squared
    mass gives a live, assumption-free noise scale in Qweight units.
    """
    if counters.size == 0 or width < 1:
        return 0.0
    rows = np.asarray(counters, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows[None, :]
    row_f2 = np.sum(rows * rows, axis=1)
    return float(math.sqrt(float(row_f2.mean()) / width))


def structural_probe(filt) -> dict:
    """One flat dict of structural facts and derived accuracy estimators.

    Works on the scalar :class:`QuantileFilter`, the numpy
    :class:`~repro.core.vectorized.BatchQuantileFilter`, and the
    :class:`~repro.core.windowed.WindowedQuantileFilter` (which probes
    its active inner filter and adds the window fields).  Fields an
    engine does not track are simply absent, so consumers must use
    ``.get()``.

    Derived estimators:

    * ``fingerprint_collision_probability`` — chance a fresh key's
      fingerprint collides with an already-occupied slot in its bucket
      (mean occupied slots per bucket times ``2^-fp_bits``).
    * ``vague_noise_std`` — Count-Sketch noise scale in Qweight units
      (see :func:`_vague_noise_std`); compare against
      ``report_threshold`` to judge whether vague-part estimates are
      trustworthy.
    """
    # Windowed wrapper: probe the active inner filter, keep window facts.
    inner = getattr(filt, "_filter", None)
    if inner is None and getattr(filt, "_panes", None) is not None:
        inner = filt._panes[filt._elder]  # sliding mode: the elder pane
    if inner is not None and hasattr(filt, "window_items"):
        probe = structural_probe(inner)
        probe.update(
            engine="windowed",
            window_items=filt.window_items,
            window_mode=filt.mode,
            window_fill=float(filt.window_fill),
            window_resets=int(filt.resets),
            items_processed=int(filt.items_processed),
            report_count=int(filt.report_count),
        )
        return probe

    probe: dict = {
        "items_processed": int(filt.items_processed),
        "report_count": int(filt.report_count),
        "nbytes": int(filt.nbytes),
        "threshold": float(filt.criteria.threshold),
        "report_threshold": float(filt.criteria.report_threshold),
    }

    candidate = getattr(filt, "candidate", None)
    if candidate is not None:
        # Scalar engine: parts are real objects.
        probe.update(
            engine="scalar",
            num_buckets=int(candidate.num_buckets),
            bucket_size=int(candidate.bucket_size),
            fp_bits=int(candidate.fp_bits),
            candidate_entries=int(candidate.entry_count()),
            candidate_occupancy=float(candidate.occupancy()),
        )
        counters = filt.vague.sketch.counters
        probe.update(
            vague_width=int(filt.vague.width),
            vague_depth=int(filt.vague.depth),
            vague_saturation=float(counters.saturation_fraction()),
            vague_noise_std=_vague_noise_std(
                np.asarray(counters.data, dtype=np.float64),
                filt.vague.width,
            ),
        )
    elif hasattr(filt, "entry_count"):
        # Batch engine: flat numpy planes, float counters (no clamp).
        probe.update(
            engine="batch",
            num_buckets=int(filt.num_buckets),
            bucket_size=int(filt.bucket_size),
            fp_bits=int(filt.fp_bits),
            candidate_entries=int(filt.entry_count()),
            candidate_occupancy=float(filt.occupancy()),
            vague_width=int(filt.width),
            vague_depth=int(filt.depth),
            vague_saturation=0.0,
        )
        rows = getattr(filt, "_rows", None)
        if rows is not None:
            probe["vague_noise_std"] = _vague_noise_std(
                np.asarray(rows, dtype=np.float64), filt.width
            )

    if "candidate_entries" in probe and probe.get("num_buckets"):
        mean_occupied = probe["candidate_entries"] / probe["num_buckets"]
        probe["fingerprint_collision_probability"] = (
            mean_occupied / float(2 ** probe["fp_bits"])
        )
    return probe


def describe(qf: QuantileFilter, top_k: int = 5) -> str:
    """Render a filter's current state as a multi-line text report."""
    lines: List[str] = []
    lines.append(
        f"QuantileFilter — {qf.nbytes:,} modelled bytes "
        f"({qf.candidate.nbytes:,} candidate + {qf.vague.nbytes:,} vague)"
    )
    lines.append(
        f"criteria: delta={qf.criteria.delta} T={qf.criteria.threshold} "
        f"epsilon={qf.criteria.epsilon} "
        f"(report at Qweight >= {qf.criteria.report_threshold:g})"
    )
    lines.append(
        f"candidate: {qf.candidate.num_buckets} buckets x "
        f"{qf.candidate.bucket_size} entries, "
        f"{qf.candidate.fp_bits}-bit fingerprints, "
        f"occupancy {qf.candidate.occupancy():.1%} "
        f"({qf.candidate.entry_count()} entries)"
    )
    counters = qf.vague.sketch.counters
    data = counters.data
    lines.append(
        f"vague [{qf.vague.backend}]: {qf.vague.depth} x {qf.vague.width} "
        f"{counters.kind} counters, "
        f"saturation {counters.saturation_fraction():.2%}, "
        f"|counter| mean {float(np.abs(data).mean()):.2f} "
        f"max {float(np.abs(data).max()):.0f}"
    )
    lines.append(
        f"traffic: {qf.items_processed:,} items, "
        f"{qf.report_count} reports ({len(qf.reported_keys)} distinct keys), "
        f"hit rate {qf.candidate_hit_rate():.1%}, "
        f"{qf.vague_inserts:,} vague inserts, {qf.swaps:,} swaps"
    )
    top = qf.top_candidates(k=top_k)
    if top:
        lines.append(f"top {len(top)} candidate Qweights:")
        for fp, bucket, qweight in top:
            lines.append(
                f"  fp=0x{fp:04x} bucket={bucket} Qweight={qweight:.1f}"
            )
    warnings = health_warnings(qf)
    if warnings:
        lines.append("warnings:")
        lines.extend(f"  ! {w}" for w in warnings)
    else:
        lines.append("health: ok")
    return "\n".join(lines)
