"""Numpy-accelerated batch engine for QuantileFilter.

The scalar :class:`~repro.core.quantile_filter.QuantileFilter` spends
most of its Python time computing hashes.  This engine processes the
stream in chunks: fingerprints, candidate buckets, item weights, vague
column indices and sign bits are all computed **vectorised per chunk**,
then a tight Python loop applies Algorithm 2's branching with plain list
indexing (no per-item numpy or method-call overhead).

Semantics match the scalar filter configured with ``counter_kind=
"float"`` and the same seed: identical hash families are constructed
from identical seed derivations, so the two implementations report the
same keys item-for-item (the equivalence test in
``tests/core/test_vectorized.py`` checks exactly that).  The throughput
experiments (Fig. 8/10) use this engine.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.common.errors import ParameterError
from repro.common.hashing import (
    FingerprintHasher,
    HashFamily,
    SignHashFamily,
    canonical_keys,
    mix64,
)
from repro.common.memory import bits_to_bytes, sizeof_counter, split_budget
from repro.core.candidate import QWEIGHT_COUNTER_BYTES
from repro.core.criteria import Criteria
from repro.core.quantile_filter import DEFAULT_CANDIDATE_FRACTION
from repro.core.strategies import make_strategy
from repro.core.vague import vague_key
from repro.quantiles.base import RANK_EPS


class BatchQuantileFilter:
    """Chunked, numpy-assisted QuantileFilter over integer-keyed streams.

    Keys must be integers (the experiment streams use integer flow ids);
    the scalar filter remains the general-purpose implementation for
    arbitrary hashable keys.

    Parameters mirror :class:`~repro.core.quantile_filter.QuantileFilter`
    where applicable; counters are plain Python floats (no saturation),
    matching the scalar filter's ``counter_kind="float"`` mode.
    """

    def __init__(
        self,
        criteria: Criteria,
        memory_bytes: Optional[int] = None,
        *,
        num_buckets: Optional[int] = None,
        vague_width: Optional[int] = None,
        bucket_size: int = 6,
        depth: int = 3,
        candidate_fraction: float = DEFAULT_CANDIDATE_FRACTION,
        fp_bits: int = 16,
        strategy: str = "comparative",
        seed: int = 0,
        chunk_size: int = 65536,
    ):
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.criteria = criteria
        self.chunk_size = chunk_size

        self.bucket_size = bucket_size
        self.depth = depth
        self.fp_bits = fp_bits
        if memory_bytes is not None:
            candidate_bytes, vague_bytes = split_budget(
                memory_bytes, candidate_fraction
            )
            per_slot = bits_to_bytes(fp_bits) + QWEIGHT_COUNTER_BYTES
            slots = max(bucket_size, candidate_bytes // per_slot)
            self.num_buckets = max(1, slots // bucket_size)
            per_counter = sizeof_counter("int32")
            self.width = max(1, vague_bytes // (depth * per_counter))
        else:
            if num_buckets is None or vague_width is None:
                raise ParameterError(
                    "pass either memory_bytes or both num_buckets and vague_width"
                )
            self.num_buckets = num_buckets
            self.width = vague_width

        # Hash families constructed with the SAME seed derivations as the
        # scalar filter, so both address identical cells.  The seed is
        # kept because sharded deployments rebuild a scalar twin from it
        # (repro.parallel.sharded.batch_filter_to_scalar).
        self.seed = seed
        self._hashes = HashFamily(depth, self.width, seed=seed)
        self._signs = SignHashFamily(depth, seed=seed + 1)
        self._fp_hasher = FingerprintHasher(bits=fp_bits, seed=seed + 7)
        self._bucket_seed = np.uint64(mix64(seed ^ 0x1234_5678_9ABC_DEF0))
        self.strategy = make_strategy(strategy, seed=seed + 13)

        # Candidate part as nested Python lists (fast scalar access).
        self._cand_fps: List[List[int]] = [
            [0] * bucket_size for _ in range(self.num_buckets)
        ]
        self._cand_qws: List[List[float]] = [
            [0.0] * bucket_size for _ in range(self.num_buckets)
        ]
        # Vague part counters, one flat list per row.
        self._rows: List[List[float]] = [
            [0.0] * self.width for _ in range(depth)
        ]

        self.reported_keys: Set[int] = set()
        self.items_processed = 0
        self.report_count = 0
        #: When True, the hot loop maintains the per-event tallies below
        #: (candidate hits, vague inserts, swaps).  Off by default so an
        #: uninstrumented run pays only one local-bool branch per item;
        #: ``repro.observability.observe_filter`` switches it on.
        self.stats_tallies = False
        self.candidate_hits = 0
        self.vague_inserts = 0
        self.swaps = 0
        # Reports are rare, so the by-source split is always maintained.
        self.candidate_reports = 0
        self.vague_reports = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def process(self, keys: np.ndarray, values: np.ndarray) -> Set[int]:
        """Run the whole stream; returns the deduplicated reported keys."""
        n = keys.shape[0]
        if values.shape[0] != n:
            raise ParameterError(
                f"keys and values length mismatch: {n} vs {values.shape[0]}"
            )
        for start in range(0, n, self.chunk_size):
            self._process_chunk(
                keys[start:start + self.chunk_size],
                values[start:start + self.chunk_size],
            )
        return self.reported_keys

    # ------------------------------------------------------------------
    # chunk machinery
    # ------------------------------------------------------------------
    def _process_chunk(self, keys: np.ndarray, values: np.ndarray) -> None:
        crit = self.criteria
        canon = canonical_keys(keys)
        fps = self._fp_hasher.fingerprints_batch(canon)
        from repro.common.hashing import _mix64_array  # vectorised mixer

        buckets = (
            _mix64_array(canon ^ self._bucket_seed) % np.uint64(self.num_buckets)
        ).astype(np.int64)
        weights = np.where(
            values > crit.threshold, crit.positive_weight, -1.0
        )
        # Vague addressing depends only on (fp, bucket); precompute for
        # the whole chunk even though only bucket-full items use it.
        vkeys = _mix64_array(
            (buckets.astype(np.uint64) << np.uint64(20)) ^ fps
        )
        cols = self._hashes.indices_batch(vkeys)
        signs = self._signs.signs_batch(vkeys)

        # Convert to plain lists: Python-level indexing in the hot loop
        # is substantially faster than per-item numpy scalar access.
        fp_list = fps.tolist()
        bucket_list = buckets.tolist()
        weight_list = weights.tolist()
        key_list = keys.tolist()
        col_rows = [cols[r].tolist() for r in range(self.depth)]
        sign_rows = [signs[r].tolist() for r in range(self.depth)]

        self._hot_loop(
            key_list, fp_list, bucket_list, weight_list, col_rows, sign_rows
        )

    def _hot_loop(
        self, key_list, fp_list, bucket_list, weight_list, col_rows, sign_rows
    ) -> None:
        crit = self.criteria
        # Same boundary tolerance as the scalar filter and the oracle.
        report_threshold = crit.report_threshold - RANK_EPS * (
            1 + crit.report_threshold
        )
        cand_fps = self._cand_fps
        cand_qws = self._cand_qws
        rows = self._rows
        depth = self.depth
        bucket_size = self.bucket_size
        should_replace = self.strategy.should_replace
        reported = self.reported_keys
        track = self.stats_tallies
        n_hits = n_vague = n_swaps = 0

        for i in range(len(key_list)):
            fp = fp_list[i]
            bucket = bucket_list[i]
            weight = weight_list[i]
            bucket_fps = cand_fps[bucket]
            bucket_qws = cand_qws[bucket]

            # Case 1: candidate hit.
            matched = False
            free = -1
            for slot in range(bucket_size):
                slot_fp = bucket_fps[slot]
                if slot_fp == fp:
                    if track:
                        n_hits += 1
                    new_qw = bucket_qws[slot] + weight
                    if new_qw >= report_threshold:
                        bucket_qws[slot] = 0.0
                        reported.add(key_list[i])
                        self.report_count += 1
                        self.candidate_reports += 1
                    else:
                        bucket_qws[slot] = new_qw
                    matched = True
                    break
                if slot_fp == 0 and free < 0:
                    free = slot
            if matched:
                continue

            # Case 2: vacancy.
            if free >= 0:
                bucket_fps[free] = fp
                if weight >= report_threshold:
                    bucket_qws[free] = 0.0
                    reported.add(key_list[i])
                    self.report_count += 1
                    self.candidate_reports += 1
                else:
                    bucket_qws[free] = weight
                continue

            # Case 3: vague part (fused insert + median estimate).
            if track:
                n_vague += 1
            ests = []
            for r in range(depth):
                col = col_rows[r][i]
                sign = sign_rows[r][i]
                rows[r][col] += sign * weight
                ests.append(sign * rows[r][col])
            ests.sort()
            estimate = ests[len(ests) // 2] if depth % 2 else (
                0.5 * (ests[depth // 2 - 1] + ests[depth // 2])
            )

            if estimate >= report_threshold:
                for r in range(depth):
                    rows[r][col_rows[r][i]] -= sign_rows[r][i] * estimate
                reported.add(key_list[i])
                self.report_count += 1
                self.vague_reports += 1
                estimate = 0.0

            # Candidate election against the bucket minimum.
            min_slot = 0
            min_qw = bucket_qws[0]
            for slot in range(1, bucket_size):
                if bucket_qws[slot] < min_qw:
                    min_qw = bucket_qws[slot]
                    min_slot = slot
            if should_replace(estimate, min_qw):
                if track:
                    n_swaps += 1
                evicted_fp = bucket_fps[min_slot]
                evicted_vkey = vague_key(evicted_fp, bucket)
                evicted_cols = self._hashes.indices(evicted_vkey)
                evicted_signs = self._signs.signs(evicted_vkey)
                for r in range(depth):
                    rows[r][evicted_cols[r]] += evicted_signs[r] * min_qw
                if estimate != 0.0:
                    for r in range(depth):
                        rows[r][col_rows[r][i]] -= sign_rows[r][i] * estimate
                bucket_fps[min_slot] = fp
                bucket_qws[min_slot] = estimate

        self.items_processed += len(key_list)
        if track:
            self.candidate_hits += n_hits
            self.vague_inserts += n_vague
            self.swaps += n_swaps

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Occupied candidate slots (snapshot-time scan, not hot-path)."""
        return sum(
            1 for bucket in self._cand_fps for fp in bucket if fp != 0
        )

    def occupancy(self) -> float:
        """Fraction of candidate slots currently holding an entry."""
        return self.entry_count() / (self.num_buckets * self.bucket_size)

    def candidate_hit_rate(self) -> float:
        """Fraction of inserts resolved in the candidate part.

        Meaningful only while :attr:`stats_tallies` is on (the hit tally
        does not advance otherwise).
        """
        if self.items_processed == 0:
            return 0.0
        return self.candidate_hits / self.items_processed

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint (same model as the scalar filter)."""
        per_slot = bits_to_bytes(self.fp_bits) + QWEIGHT_COUNTER_BYTES
        candidate = self.num_buckets * self.bucket_size * per_slot
        vague = self.depth * self.width * sizeof_counter("int32")
        return candidate + vague
