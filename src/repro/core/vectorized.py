"""Numpy-accelerated batch engine for QuantileFilter.

The scalar :class:`~repro.core.quantile_filter.QuantileFilter` spends
most of its Python time computing hashes and walking Algorithm 2's
branches one item at a time.  This engine processes the stream in
chunks and splits every chunk into two tiers:

* **Vectorised tier** — fingerprints, candidate buckets and item
  weights are computed for the whole chunk at once; items that resolve
  as *pure candidate hits* (their fingerprint already occupies a slot,
  and accumulating the chunk's weights cannot cross the report
  threshold) are folded into the per-slot Qweight array with
  bucket-segmented numpy sums.  This is the steady-state majority of a
  heavy-hitter stream.
* **Scalar tier** — items whose bucket sees a report crossing, a
  vacancy fill, a replacement decision or a vague-part touch within
  the chunk fall back to the exact per-item branch of Algorithm 2
  (the pre-vectorisation hot loop), applied in stream order.

The split is *exact*, not approximate: a bucket is handed to the
scalar tier from the first item that misses its candidate slots, and a
slot whose segment might cross the report threshold is replayed
item-by-item, so the engine reports the same keys item-for-item as the
scalar filter configured with ``counter_kind="float"`` and the same
seed (``tests/core/test_vectorized.py`` and
``tests/properties/test_property_batch_equivalence.py`` check exactly
that).  Numpy accumulation uses sequential ``cumsum``/ordered adds so
even the floating-point state stays bit-identical.

Semantics match the scalar filter configured with ``counter_kind=
"float"`` and the same seed: identical hash families are constructed
from identical seed derivations, so the two implementations report the
same keys item-for-item.  The throughput experiments (Fig. 8/10) use
this engine; ``vectorize=False`` pins the legacy all-scalar chunk loop
(kept as the benchmark baseline and as a debugging aid).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.common.errors import ParameterError
from repro.common.hashing import (
    FingerprintHasher,
    HashFamily,
    SignHashFamily,
    _mix64_array,
    canonical_keys,
    mix64,
)
from repro.common.memory import bits_to_bytes, sizeof_counter, split_budget
from repro.core.candidate import QWEIGHT_COUNTER_BYTES
from repro.core.criteria import Criteria
from repro.core.quantile_filter import DEFAULT_CANDIDATE_FRACTION
from repro.core.strategies import make_strategy
from repro.core.vague import vague_key
from repro.quantiles.base import RANK_EPS

#: Shift combining (bucket, fingerprint) into one vague-part key; must
#: match :func:`repro.core.vague.vague_key`.
_VKEY_SHIFT = np.uint64(20)

#: Default items per internal processing chunk.  Smaller than the old
#: 64 Ki default on purpose: the vectorised tier classifies buckets
#: against chunk-start state, so shorter chunks quarantine new-key
#: arrivals faster and keep the steady-state fast path hot.
DEFAULT_CHUNK_SIZE = 8_192

#: First chunk length of the geometric ramp used by :meth:`process` —
#: cold-start chunks are mostly candidate misses (scalar tier), so the
#: ramp keeps them short until the buckets are populated.
_RAMP_FIRST_CHUNK = 512


class BatchQuantileFilter:
    """Chunked, numpy-assisted QuantileFilter over integer-keyed streams.

    Keys must be integers (the experiment streams use integer flow ids);
    the scalar filter remains the general-purpose implementation for
    arbitrary hashable keys.

    Parameters mirror :class:`~repro.core.quantile_filter.QuantileFilter`
    where applicable; counters are plain Python floats (no saturation),
    matching the scalar filter's ``counter_kind="float"`` mode.

    ``vectorize=False`` disables the bucket-segmented fast tier and runs
    every item through the scalar branch — the pre-optimisation
    behaviour, kept for benchmarking and for bisecting equivalence
    failures.
    """

    def __init__(
        self,
        criteria: Criteria,
        memory_bytes: Optional[int] = None,
        *,
        num_buckets: Optional[int] = None,
        vague_width: Optional[int] = None,
        bucket_size: int = 6,
        depth: int = 3,
        candidate_fraction: float = DEFAULT_CANDIDATE_FRACTION,
        fp_bits: int = 16,
        strategy: str = "comparative",
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        vectorize: bool = True,
    ):
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.criteria = criteria
        self.chunk_size = chunk_size
        self.vectorize = vectorize

        self.bucket_size = bucket_size
        self.depth = depth
        self.fp_bits = fp_bits
        if memory_bytes is not None:
            candidate_bytes, vague_bytes = split_budget(
                memory_bytes, candidate_fraction
            )
            per_slot = bits_to_bytes(fp_bits) + QWEIGHT_COUNTER_BYTES
            slots = max(bucket_size, candidate_bytes // per_slot)
            self.num_buckets = max(1, slots // bucket_size)
            per_counter = sizeof_counter("int32")
            self.width = max(1, vague_bytes // (depth * per_counter))
        else:
            if num_buckets is None or vague_width is None:
                raise ParameterError(
                    "pass either memory_bytes or both num_buckets and vague_width"
                )
            self.num_buckets = num_buckets
            self.width = vague_width

        # Hash families constructed with the SAME seed derivations as the
        # scalar filter, so both address identical cells.  The seed is
        # kept because sharded deployments rebuild a scalar twin from it
        # (repro.parallel.sharded.batch_filter_to_scalar).
        self.seed = seed
        self._hashes = HashFamily(depth, self.width, seed=seed)
        self._signs = SignHashFamily(depth, seed=seed + 1)
        self._fp_hasher = FingerprintHasher(bits=fp_bits, seed=seed + 7)
        self._bucket_seed = np.uint64(mix64(seed ^ 0x1234_5678_9ABC_DEF0))
        self._num_buckets_u64 = np.uint64(self.num_buckets)
        self.strategy = make_strategy(strategy, seed=seed + 13)

        # Candidate part as dense numpy planes: the vectorised tier
        # gathers whole buckets per chunk; the scalar tier extracts the
        # few touched buckets into Python lists and writes them back.
        self._cand_fps = np.zeros(
            (self.num_buckets, bucket_size), dtype=np.uint64
        )
        self._cand_qws = np.zeros(
            (self.num_buckets, bucket_size), dtype=np.float64
        )
        # Per-slot scratch for the fast tier's crossing screen; zeroed
        # after every use so allocation happens once, not per chunk.
        self._scratch_pos = np.zeros(
            self.num_buckets * bucket_size, dtype=np.float64
        )
        # Vague part counters, one flat list per row (scalar-tier-only
        # state: the vectorised tier never touches the vague part).
        self._rows: List[List[float]] = [
            [0.0] * self.width for _ in range(depth)
        ]

        self.reported_keys: Set[int] = set()
        self.items_processed = 0
        self.report_count = 0
        #: When True, the hot loop maintains the per-event tallies below
        #: (candidate hits, vague inserts, swaps).  Off by default so an
        #: uninstrumented run pays only one local-bool branch per item;
        #: ``repro.observability.observe_filter`` switches it on.
        self.stats_tallies = False
        self.candidate_hits = 0
        self.vague_inserts = 0
        self.swaps = 0
        # Reports are rare, so the by-source split is always maintained.
        self.candidate_reports = 0
        self.vague_reports = 0
        self.retargets = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def process(self, keys: np.ndarray, values: np.ndarray) -> Set[int]:
        """Run the whole stream; returns the deduplicated reported keys."""
        n = keys.shape[0]
        if values.shape[0] != n:
            raise ParameterError(
                f"keys and values length mismatch: {n} vs {values.shape[0]}"
            )
        # Ramp the chunk size up geometrically from a small first chunk:
        # at cold start every key misses the candidate part, sending the
        # whole first chunk to the scalar tier, so short early chunks
        # populate the buckets cheaply before full-width chunks arrive.
        # Chunk boundaries never change semantics (each chunk is exact),
        # only how much work lands in which tier.
        start = 0
        size = min(_RAMP_FIRST_CHUNK, self.chunk_size) if self.vectorize else self.chunk_size
        while start < n:
            self._process_chunk(
                keys[start:start + size], values[start:start + size]
            )
            start += size
            size = min(size * 2, self.chunk_size)
        return self.reported_keys

    def retarget(self, threshold: float) -> Criteria:
        """Move the value threshold ``T``, preserving all sketch state.

        Same semantics as
        :meth:`~repro.core.quantile_filter.QuantileFilter.retarget`.
        Every chunk reads ``self.criteria`` once at its start
        (:meth:`_process_chunk`), so a retarget between :meth:`process`
        calls — the adaptive-controller cadence — takes effect exactly
        at the next chunk boundary, never mid-chunk.
        """
        self.criteria = self.criteria.with_updates(threshold=float(threshold))
        self.retargets += 1
        return self.criteria

    @property
    def _report_threshold_eff(self) -> float:
        # Same boundary tolerance as the scalar filter and the oracle.
        crit = self.criteria
        return crit.report_threshold - RANK_EPS * (1 + crit.report_threshold)

    # ------------------------------------------------------------------
    # chunk machinery
    # ------------------------------------------------------------------
    def _chunk_parts(self, keys: np.ndarray, values: np.ndarray):
        """Lock-free per-chunk precompute: fingerprints, buckets, weights.

        Pure functions of the inputs and the (immutable) hash families —
        no filter state is read or written, so concurrent callers (the
        thread-parallel engine in :mod:`repro.parallel.concurrent`) may
        run this outside any lock.
        """
        crit = self.criteria
        canon = canonical_keys(keys)
        fps = self._fp_hasher.fingerprints_batch(canon)
        buckets = (
            _mix64_array(canon ^ self._bucket_seed) % self._num_buckets_u64
        ).astype(np.int64)
        weights = np.where(
            values > crit.threshold, crit.positive_weight, -1.0
        )
        return fps, buckets, weights

    def _classify_chunk(self, fps: np.ndarray, buckets: np.ndarray):
        """Split a (sub)chunk into the fast and scalar tiers.

        Classifies against chunk-start candidate state.  A "hit" is a
        fingerprint already resident in its bucket; the first miss in
        a bucket can mutate that bucket's slots (vacancy fill or
        replacement), so only the hit-prefix of each bucket — items
        strictly before the bucket's first miss — is provably pure.
        Reads the candidate planes: callers that share the planes across
        threads must hold the owning bucket-stripe lock.

        Returns ``(hit, fast_idx, slow_idx)``: the per-slot hit matrix
        and the index arrays of the two tiers (both in ascending, i.e.
        stream, order).
        """
        n = int(fps.shape[0])
        bucket_rows = self._cand_fps[buckets]
        hit = bucket_rows == fps[:, None]
        hit_any = hit.any(axis=1)
        miss_idx = np.flatnonzero(~hit_any)
        if miss_idx.size:
            first_miss = np.full(self.num_buckets, n, dtype=np.int64)
            np.minimum.at(first_miss, buckets[miss_idx], miss_idx)
            fast_mask = hit_any & (np.arange(n) < first_miss[buckets])
        else:
            fast_mask = hit_any
        return hit, np.flatnonzero(fast_mask), np.flatnonzero(~fast_mask)

    def _process_chunk(self, keys: np.ndarray, values: np.ndarray) -> None:
        n = int(keys.shape[0])
        fps, buckets, weights = self._chunk_parts(keys, values)

        if not self.vectorize:
            self._scalar_pass(keys, fps, buckets, weights, np.arange(n))
            self.items_processed += n
            return

        hit, fast_idx, slow_idx = self._classify_chunk(fps, buckets)

        # The two tiers commute: fast items touch only candidate slots
        # of buckets whose chunk prefix is hit-pure, and the scalar tier
        # begins exactly where those prefixes end, so committing the
        # whole vectorised tier first preserves stream-order semantics.
        if fast_idx.size:
            self._fast_candidate_pass(keys, buckets, weights, hit, fast_idx)
        if slow_idx.size:
            self._scalar_pass(keys, fps, buckets, weights, slow_idx)
        self.items_processed += n

    def _fast_candidate_pass(
        self,
        keys: np.ndarray,
        buckets: np.ndarray,
        weights: np.ndarray,
        hit: np.ndarray,
        fast_idx: np.ndarray,
        sink=None,
    ) -> None:
        """Grouped per-slot Qweight accumulation for pure candidate hits.

        ``sink`` receives the event tallies and reported keys; it
        defaults to the filter itself and exists so the thread-parallel
        engine can direct each bucket stripe's tallies at a
        lock-protected per-stripe accumulator.

        A slot is *clean* when its starting Qweight plus the sum of the
        chunk's positive weights provably stays below the report
        threshold (with a safety margin dominating float summation
        error) — then no prefix of the slot's updates can cross, and
        the whole segment commits through one ordered ``np.add.at``.
        ``ufunc.at`` is unbuffered and applies the adds in index order,
        i.e. stream order, so the committed Qweights are bit-identical
        to the scalar filter's left-to-right additions.  Slots that
        might cross (hot keys about to report) are replayed
        item-by-item in stream order — slot-local state, so replay
        order relative to other slots is irrelevant.
        """
        if sink is None:
            sink = self
        report_threshold = self._report_threshold_eff
        qws_flat = self._cand_qws.reshape(-1)
        reported = sink.reported_keys

        slots = np.argmax(hit[fast_idx], axis=1)
        gslot = buckets[fast_idx] * self.bucket_size + slots
        fast_weights = weights[fast_idx]

        # Conservative crossing screen: per-slot positive-weight mass.
        scratch = self._scratch_pos
        np.add.at(scratch, gslot, np.maximum(fast_weights, 0.0))
        bound = qws_flat[gslot] + scratch[gslot]
        scratch[gslot] = 0.0
        risky = bound >= report_threshold - 1e-7 * (np.abs(bound) + 1.0)

        if not risky.any():
            np.add.at(qws_flat, gslot, fast_weights)
        else:
            clean = ~risky
            np.add.at(qws_flat, gslot[clean], fast_weights[clean])
            # Replay risky slots exactly, grouped by slot, preserving
            # stream order within each slot (stable sort).
            risky_pos = np.flatnonzero(risky)
            order = risky_pos[np.argsort(gslot[risky_pos], kind="stable")]
            replay_slots = gslot[order].tolist()
            replay_weights = fast_weights[order].tolist()
            replay_keys = keys[fast_idx[order]].tolist()
            current_slot = -1
            qweight = 0.0
            for pos in range(len(replay_slots)):
                slot = replay_slots[pos]
                if slot != current_slot:
                    if current_slot >= 0:
                        qws_flat[current_slot] = qweight
                    current_slot = slot
                    qweight = qws_flat[slot]
                new_qw = qweight + replay_weights[pos]
                if new_qw >= report_threshold:
                    qweight = 0.0
                    reported.add(replay_keys[pos])
                    sink.report_count += 1
                    sink.candidate_reports += 1
                else:
                    qweight = new_qw
            if current_slot >= 0:
                qws_flat[current_slot] = qweight

        if sink.stats_tallies:
            sink.candidate_hits += int(fast_idx.size)

    def _scalar_pass(
        self,
        keys: np.ndarray,
        fps: np.ndarray,
        buckets: np.ndarray,
        weights: np.ndarray,
        idx: np.ndarray,
        sink=None,
    ) -> None:
        """Algorithm 2's exact per-item branch over the ``idx`` subset.

        This is the pre-vectorisation hot loop: it handles report
        crossings, vacancy fills, replacement decisions and every
        vague-part touch.  Touched buckets are staged into Python lists
        (fast scalar indexing) and written back afterwards; vague
        addressing is computed vectorised for just the subset.

        ``sink`` plays the same role as in :meth:`_fast_candidate_pass`:
        tallies and reported keys go to it instead of ``self`` when the
        thread-parallel engine supplies a per-stripe accumulator.
        """
        if idx.size == 0:
            return
        if sink is None:
            sink = self
        report_threshold = self._report_threshold_eff
        key_list = keys[idx].tolist()
        fp_list = fps[idx].tolist()
        bucket_list = buckets[idx].tolist()
        weight_list = weights[idx].tolist()
        # Vague addressing depends only on (fp, bucket); computed for
        # the scalar subset only — the vectorised tier never needs it.
        vkeys = _mix64_array(
            (buckets[idx].astype(np.uint64) << _VKEY_SHIFT) ^ fps[idx]
        )
        cols = self._hashes.indices_batch(vkeys)
        signs = self._signs.signs_batch(vkeys)
        col_rows = [cols[r].tolist() for r in range(self.depth)]
        sign_rows = [signs[r].tolist() for r in range(self.depth)]

        # Stage touched buckets as plain lists for the loop below — one
        # fancy-indexed gather + tolist per plane, not one per bucket.
        touched = np.unique(buckets[idx])
        touched_list = touched.tolist()
        cand_fps: Dict[int, List[int]] = dict(
            zip(touched_list, self._cand_fps[touched].tolist())
        )
        cand_qws: Dict[int, List[float]] = dict(
            zip(touched_list, self._cand_qws[touched].tolist())
        )

        rows = self._rows
        depth = self.depth
        bucket_size = self.bucket_size
        should_replace = self.strategy.should_replace
        reported = sink.reported_keys
        track = sink.stats_tallies
        n_hits = n_vague = n_swaps = 0

        for i in range(len(key_list)):
            fp = fp_list[i]
            bucket = bucket_list[i]
            weight = weight_list[i]
            bucket_fps = cand_fps[bucket]
            bucket_qws = cand_qws[bucket]

            # Case 1: candidate hit.
            matched = False
            free = -1
            for slot in range(bucket_size):
                slot_fp = bucket_fps[slot]
                if slot_fp == fp:
                    if track:
                        n_hits += 1
                    new_qw = bucket_qws[slot] + weight
                    if new_qw >= report_threshold:
                        bucket_qws[slot] = 0.0
                        reported.add(key_list[i])
                        sink.report_count += 1
                        sink.candidate_reports += 1
                    else:
                        bucket_qws[slot] = new_qw
                    matched = True
                    break
                if slot_fp == 0 and free < 0:
                    free = slot
            if matched:
                continue

            # Case 2: vacancy.
            if free >= 0:
                bucket_fps[free] = fp
                if weight >= report_threshold:
                    bucket_qws[free] = 0.0
                    reported.add(key_list[i])
                    sink.report_count += 1
                    sink.candidate_reports += 1
                else:
                    bucket_qws[free] = weight
                continue

            # Case 3: vague part (fused insert + median estimate).
            if track:
                n_vague += 1
            ests = []
            for r in range(depth):
                col = col_rows[r][i]
                sign = sign_rows[r][i]
                rows[r][col] += sign * weight
                ests.append(sign * rows[r][col])
            ests.sort()
            estimate = ests[len(ests) // 2] if depth % 2 else (
                0.5 * (ests[depth // 2 - 1] + ests[depth // 2])
            )

            if estimate >= report_threshold:
                for r in range(depth):
                    rows[r][col_rows[r][i]] -= sign_rows[r][i] * estimate
                reported.add(key_list[i])
                sink.report_count += 1
                sink.vague_reports += 1
                estimate = 0.0

            # Candidate election against the bucket minimum.
            min_slot = 0
            min_qw = bucket_qws[0]
            for slot in range(1, bucket_size):
                if bucket_qws[slot] < min_qw:
                    min_qw = bucket_qws[slot]
                    min_slot = slot
            if should_replace(estimate, min_qw):
                if track:
                    n_swaps += 1
                evicted_fp = bucket_fps[min_slot]
                evicted_vkey = vague_key(evicted_fp, bucket)
                evicted_cols = self._hashes.indices(evicted_vkey)
                evicted_signs = self._signs.signs(evicted_vkey)
                for r in range(depth):
                    rows[r][evicted_cols[r]] += evicted_signs[r] * min_qw
                if estimate != 0.0:
                    for r in range(depth):
                        rows[r][col_rows[r][i]] -= sign_rows[r][i] * estimate
                bucket_fps[min_slot] = fp
                bucket_qws[min_slot] = estimate

        self._cand_fps[touched] = np.asarray(
            [cand_fps[b] for b in touched_list], dtype=np.uint64
        )
        self._cand_qws[touched] = np.asarray(
            [cand_qws[b] for b in touched_list], dtype=np.float64
        )

        if track:
            sink.candidate_hits += n_hits
            sink.vague_inserts += n_vague
            sink.swaps += n_swaps

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Occupied candidate slots (snapshot-time scan, not hot-path)."""
        return int(np.count_nonzero(self._cand_fps))

    def occupancy(self) -> float:
        """Fraction of candidate slots currently holding an entry."""
        return self.entry_count() / (self.num_buckets * self.bucket_size)

    def candidate_hit_rate(self) -> float:
        """Fraction of inserts resolved in the candidate part.

        Meaningful only while :attr:`stats_tallies` is on (the hit tally
        does not advance otherwise).
        """
        if self.items_processed == 0:
            return 0.0
        return self.candidate_hits / self.items_processed

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint (same model as the scalar filter)."""
        per_slot = bits_to_bytes(self.fp_bits) + QWEIGHT_COUNTER_BYTES
        candidate = self.num_buckets * self.bucket_size * per_slot
        vague = self.depth * self.width * sizeof_counter("int32")
        return candidate + vague
