"""The ``(epsilon, delta, T)`` filtering criteria and Qweight conversion.

The paper's central algebraic move (Sec. III-A) is to replace the
quantile comparison ``q_{eps,delta} > T`` with a running-sum comparison:
assign each item the weight

* ``-1``                     if its value ``v <= T``,
* ``+delta / (1 - delta)``   if its value ``v > T``,

and report the key exactly when the summed weight (its *Qweight*)
reaches ``epsilon / (1 - delta)``.  :class:`Criteria` packages the three
user parameters together with those two derived constants so every
structure in the package shares one source of truth for the conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ParameterError


@dataclass(frozen=True)
class Criteria:
    """Filtering criteria ``(epsilon, delta, T)`` (paper Definition 4).

    Parameters
    ----------
    delta:
        The quantile of interest, strictly inside (0, 1) — e.g. 0.95 for
        "95 % latency".
    threshold:
        The value threshold ``T``; a key is outstanding when its
        ``(epsilon, delta)``-quantile exceeds it.
    epsilon:
        Allowed rank deviation (>= 0).  Larger epsilon delays reports:
        at least ``epsilon`` extra values must exceed ``T`` before a key
        qualifies, which suppresses premature and infrequent-key reports.

    Derived attributes
    ------------------
    positive_weight:
        ``delta / (1 - delta)`` — the Qweight contribution of an item
        with ``v > T``.
    report_threshold:
        ``epsilon / (1 - delta)`` — a key is reported once its Qweight
        reaches this (Sec. III-A conversion lemma).
    """

    delta: float
    threshold: float
    epsilon: float = 0.0
    positive_weight: float = field(init=False, repr=False)
    report_threshold: float = field(init=False, repr=False)

    def __post_init__(self):
        if not 0.0 < self.delta < 1.0:
            raise ParameterError(f"delta must be in (0, 1), got {self.delta}")
        if self.epsilon < 0:
            raise ParameterError(f"epsilon must be >= 0, got {self.epsilon}")
        one_minus = 1.0 - self.delta
        object.__setattr__(self, "positive_weight", self.delta / one_minus)
        object.__setattr__(self, "report_threshold", self.epsilon / one_minus)

    def item_weight(self, value: float) -> float:
        """Qweight of one item under these criteria."""
        return self.positive_weight if value > self.threshold else -1.0

    def with_updates(self, **changes) -> "Criteria":
        """A copy with some of (delta, threshold, epsilon) replaced.

        Used by the dynamic-modification experiments (Figs. 13-15) which
        change one parameter at a time for half the keys.
        """
        allowed = {"delta", "threshold", "epsilon"}
        unknown = set(changes) - allowed
        if unknown:
            raise ParameterError(
                f"unknown criteria fields {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        return Criteria(
            delta=changes.get("delta", self.delta),
            threshold=changes.get("threshold", self.threshold),
            epsilon=changes.get("epsilon", self.epsilon),
        )


#: The paper's default evaluation criteria (Sec. V-A): delta = 95 %,
#: epsilon = 30; the threshold is dataset-specific and supplied by the
#: experiment configs.
DEFAULT_DELTA = 0.95
DEFAULT_EPSILON = 30.0
