"""Count Sketch (Charikar, Chen & Farach-Colton 2002) with weighted updates.

This is the vague part's backend.  Compared to the textbook structure it
supports everything QuantileFilter needs:

* **weighted updates**, including negative and fractional weights (the
  Qweight ``delta/(1-delta)`` is fractional for most ``delta``); the
  underlying :class:`~repro.common.counters.CounterArray` handles
  probabilistic rounding and overflow saturation,
* **estimate** as the median of the ``d`` signed counters (unbiased,
  Theorem 1 of the paper),
* **delete**, i.e. subtracting a given amount from every counter the key
  maps to — used when a key is reported (reset) or promoted to the
  candidate part.

Keys are canonical 64-bit integers; callers canonicalise once with
:func:`repro.common.hashing.canonical_key`.
"""

from __future__ import annotations

import statistics
from typing import List

import numpy as np

from repro.common.counters import CounterArray
from repro.common.hashing import HashFamily, SignHashFamily
from repro.common.validation import require_positive_int


class CountSketch:
    """A ``depth x width`` Count Sketch over integer keys.

    Parameters
    ----------
    depth:
        Number of rows ``d`` (independent hash functions).  The estimate
        is the median over rows, so odd values behave best; the paper
        uses 3.
    width:
        Number of counters ``w`` per row.
    counter_kind:
        Storage width of each counter (see
        :data:`repro.common.counters.COUNTER_KINDS`).
    seed:
        Seeds the hash families and the rounding RNG.
    """

    __slots__ = ("depth", "width", "counters", "_hashes", "_signs")

    def __init__(
        self,
        depth: int = 3,
        width: int = 1024,
        counter_kind: str = "int32",
        seed: int = 0,
    ):
        require_positive_int("depth", depth)
        require_positive_int("width", width)
        self.depth = depth
        self.width = width
        self.counters = CounterArray(depth, width, kind=counter_kind, seed=seed)
        self._hashes = HashFamily(depth, width, seed=seed)
        self._signs = SignHashFamily(depth, seed=seed + 1)

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def update(self, key_int: int, weight: float = 1.0) -> None:
        """Add ``weight`` to the key's signed counter in every row."""
        for row in range(self.depth):
            col = self._hashes.index(row, key_int)
            sign = self._signs.sign(row, key_int)
            self.counters.add(row, col, sign * weight)

    def estimate(self, key_int: int) -> float:
        """Median-of-rows estimate of the key's accumulated weight."""
        return statistics.median(self._row_estimates(key_int))

    def delete(self, key_int: int, amount: float) -> None:
        """Subtract ``amount`` from the key's signed counters in all rows.

        Used by QuantileFilter to reset a reported key (``amount`` = its
        current estimate) or to evict a key promoted to the candidate
        part.
        """
        for row in range(self.depth):
            col = self._hashes.index(row, key_int)
            sign = self._signs.sign(row, key_int)
            self.counters.add(row, col, -sign * amount)

    def update_and_estimate(self, key_int: int, weight: float) -> float:
        """Fused insert+query: one pass over the rows instead of two.

        This is the paper's "Technique 1" efficiency point — online
        detection needs the post-insert estimate for every item, so the
        hash computations are shared between the update and the query.
        """
        estimates: List[float] = []
        for row in range(self.depth):
            col = self._hashes.index(row, key_int)
            sign = self._signs.sign(row, key_int)
            self.counters.add(row, col, sign * weight)
            estimates.append(sign * self.counters.get(row, col))
        return statistics.median(estimates)

    def _row_estimates(self, key_int: int) -> List[float]:
        return [
            self._signs.sign(row, key_int)
            * self.counters.get(row, self._hashes.index(row, key_int))
            for row in range(self.depth)
        ]

    # ------------------------------------------------------------------
    # batch path (numpy)
    # ------------------------------------------------------------------
    def update_batch(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Vectorised :meth:`update` over ``uint64`` key / float arrays."""
        cols = self._hashes.indices_batch(keys)
        signs = self._signs.signs_batch(keys)
        rows = np.repeat(np.arange(self.depth), keys.shape[0])
        self.counters.add_batch(
            rows, cols.ravel(), (signs * weights[None, :]).ravel()
        )

    def estimate_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`estimate` returning one float per key."""
        cols = self._hashes.indices_batch(keys)
        signs = self._signs.signs_batch(keys)
        vals = self.counters.data[
            np.arange(self.depth)[:, None], cols
        ].astype(np.float64)
        return np.median(signs * vals, axis=0)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Reset all counters to zero (the paper's periodic reset)."""
        self.counters.clear()

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes."""
        return self.counters.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountSketch(depth={self.depth}, width={self.width}, "
            f"kind={self.counters.kind!r})"
        )

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "CountSketch") -> None:
        """Fold another sketch into this one (counter-wise addition).

        Count Sketch is linear: the merge of two sketches built with the
        SAME hash families (same depth/width/seed) over streams A and B
        equals one sketch built over A + B.  Used when several monitor
        shards each sketch a slice of the traffic.
        """
        self._check_mergeable(other)
        merged = self.counters.data.astype(np.float64) + other.counters.data
        if not self.counters._is_float:
            merged = np.clip(merged, self.counters._lo, self.counters._hi)
        self.counters.data = merged.astype(self.counters.data.dtype)

    def _check_mergeable(self, other: "CountSketch") -> None:
        from repro.common.errors import ParameterError

        if (self.depth, self.width) != (other.depth, other.width):
            raise ParameterError(
                f"cannot merge {self.depth}x{self.width} with "
                f"{other.depth}x{other.width} sketches"
            )
        if self._hashes._seeds != other._hashes._seeds or (
            self._signs._seeds != other._signs._seeds
        ):
            raise ParameterError(
                "cannot merge sketches with different hash seeds"
            )
