"""Count-Min Sketch (Cormode & Muthukrishnan 2005) with signed weights.

Fig. 12 of the paper swaps the vague part's Count Sketch for a Count-Min
Sketch, so this implementation mirrors :class:`~repro.sketches.count_sketch.CountSketch`'s
interface exactly (update / estimate / delete / fused
update_and_estimate / batch twins).

A plain CMS only supports non-negative increments and estimates by the
*minimum* row counter.  Qweights can be negative, so — matching what
"forcing CMS into service" means in the paper — counters are allowed to
go negative and the estimate stays the row minimum.  This over-estimates
less than CMS does for frequencies but is biased (collisions only add),
which is exactly why the paper finds the Count Sketch variant more
accurate.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.counters import CounterArray
from repro.common.hashing import HashFamily
from repro.common.validation import require_positive_int


class CountMinSketch:
    """A ``depth x width`` Count-Min Sketch over integer keys."""

    __slots__ = ("depth", "width", "counters", "_hashes")

    def __init__(
        self,
        depth: int = 3,
        width: int = 1024,
        counter_kind: str = "int32",
        seed: int = 0,
    ):
        require_positive_int("depth", depth)
        require_positive_int("width", width)
        self.depth = depth
        self.width = width
        self.counters = CounterArray(depth, width, kind=counter_kind, seed=seed)
        self._hashes = HashFamily(depth, width, seed=seed)

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def update(self, key_int: int, weight: float = 1.0) -> None:
        """Add ``weight`` to the key's counter in every row."""
        for row in range(self.depth):
            self.counters.add(row, self._hashes.index(row, key_int), weight)

    def estimate(self, key_int: int) -> float:
        """Minimum-of-rows estimate of the key's accumulated weight."""
        return min(self._row_values(key_int))

    def delete(self, key_int: int, amount: float) -> None:
        """Subtract ``amount`` from the key's counter in every row."""
        for row in range(self.depth):
            self.counters.add(row, self._hashes.index(row, key_int), -amount)

    def update_and_estimate(self, key_int: int, weight: float) -> float:
        """Fused insert+query sharing one pass of hash computations."""
        best = None
        for row in range(self.depth):
            col = self._hashes.index(row, key_int)
            self.counters.add(row, col, weight)
            value = self.counters.get(row, col)
            if best is None or value < best:
                best = value
        return best

    def _row_values(self, key_int: int) -> List[float]:
        return [
            self.counters.get(row, self._hashes.index(row, key_int))
            for row in range(self.depth)
        ]

    # ------------------------------------------------------------------
    # batch path (numpy)
    # ------------------------------------------------------------------
    def update_batch(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Vectorised :meth:`update`."""
        cols = self._hashes.indices_batch(keys)
        rows = np.repeat(np.arange(self.depth), keys.shape[0])
        self.counters.add_batch(
            rows, cols.ravel(), np.broadcast_to(weights, cols.shape).ravel()
        )

    def estimate_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`estimate` returning one float per key."""
        cols = self._hashes.indices_batch(keys)
        vals = self.counters.data[
            np.arange(self.depth)[:, None], cols
        ].astype(np.float64)
        return vals.min(axis=0)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Reset all counters to zero."""
        self.counters.clear()

    @property
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes."""
        return self.counters.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(depth={self.depth}, width={self.width}, "
            f"kind={self.counters.kind!r})"
        )

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch into this one (counter-wise addition).

        CMS is linear like Count Sketch; both operands must share
        depth, width and hash seeds.
        """
        from repro.common.errors import ParameterError

        if (self.depth, self.width) != (other.depth, other.width):
            raise ParameterError(
                f"cannot merge {self.depth}x{self.width} with "
                f"{other.depth}x{other.width} sketches"
            )
        if self._hashes._seeds != other._hashes._seeds:
            raise ParameterError(
                "cannot merge sketches with different hash seeds"
            )
        merged = self.counters.data.astype(np.float64) + other.counters.data
        if not self.counters._is_float:
            merged = np.clip(merged, self.counters._lo, self.counters._hi)
        self.counters.data = merged.astype(self.counters.data.dtype)
