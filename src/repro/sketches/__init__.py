"""Generic sketch substrates.

These are the classic frequency-estimation structures the paper builds
on or compares with: Count Sketch (the vague part's backend), Count-Min
Sketch (the alternative backend of Fig. 12), SpaceSaving (SQUAD's
heavy-hitter electorate) and reservoir sampling (SQUAD's background
sample).
"""

from repro.sketches.count_sketch import CountSketch
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_mean_min import CountMeanMinSketch
from repro.sketches.space_saving import SpaceSaving
from repro.sketches.sampling import KeyedReservoirSampler, ReservoirSampler

__all__ = [
    "CountSketch",
    "CountMinSketch",
    "CountMeanMinSketch",
    "SpaceSaving",
    "ReservoirSampler",
    "KeyedReservoirSampler",
]
