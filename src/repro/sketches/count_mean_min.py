"""Count-Mean-Min sketch (Deng & Rafiei 2007), signed-weight variant.

The QuantileFilter paper leaves "which of the existing dozens of
sketches suits the vague part best" as future work (Sec. III-D,
Choice 2).  Count-Mean-Min is a natural third candidate between the two
the paper tests: it keeps CMS's layout (no sign hashes) but corrects
each row's counter by the expected collision noise

    ``noise_r = (row_total - counter) / (width - 1)``

and aggregates rows by the *median* of the corrected values, making the
estimate approximately unbiased — the property that makes Count Sketch
work for Qweights.  The vague-backend ablation benchmark compares all
three.
"""

from __future__ import annotations

import statistics
from typing import List

import numpy as np

from repro.common.counters import CounterArray
from repro.common.hashing import HashFamily
from repro.common.validation import require_positive_int


class CountMeanMinSketch:
    """A ``depth x width`` Count-Mean-Min sketch over integer keys.

    Interface-compatible with :class:`~repro.sketches.count_sketch.CountSketch`
    (update / estimate / delete / fused update_and_estimate / clear).
    """

    __slots__ = ("depth", "width", "counters", "_hashes", "_row_totals")

    def __init__(
        self,
        depth: int = 3,
        width: int = 1024,
        counter_kind: str = "int32",
        seed: int = 0,
    ):
        require_positive_int("depth", depth)
        require_positive_int("width", width)
        self.depth = depth
        self.width = width
        self.counters = CounterArray(depth, width, kind=counter_kind, seed=seed)
        self._hashes = HashFamily(depth, width, seed=seed)
        # Exact running totals per row (cheap: one float per row) so the
        # noise correction does not need a row scan per query.
        self._row_totals = [0.0] * depth

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def update(self, key_int: int, weight: float = 1.0) -> None:
        """Add ``weight`` to the key's counter in every row."""
        for row in range(self.depth):
            self.counters.add(row, self._hashes.index(row, key_int), weight)
            self._row_totals[row] += weight

    def estimate(self, key_int: int) -> float:
        """Median over rows of the noise-corrected counters."""
        return statistics.median(self._corrected_rows(key_int))

    def delete(self, key_int: int, amount: float) -> None:
        """Subtract ``amount`` from the key's counter in every row."""
        for row in range(self.depth):
            self.counters.add(row, self._hashes.index(row, key_int), -amount)
            self._row_totals[row] -= amount

    def update_and_estimate(self, key_int: int, weight: float) -> float:
        """Fused insert + corrected-median estimate (one hash pass)."""
        corrected: List[float] = []
        for row in range(self.depth):
            col = self._hashes.index(row, key_int)
            self.counters.add(row, col, weight)
            self._row_totals[row] += weight
            corrected.append(self._correct(row, self.counters.get(row, col)))
        return statistics.median(corrected)

    def _correct(self, row: int, counter: float) -> float:
        if self.width <= 1:
            return counter
        noise = (self._row_totals[row] - counter) / (self.width - 1)
        return counter - noise

    def _corrected_rows(self, key_int: int) -> List[float]:
        return [
            self._correct(
                row, self.counters.get(row, self._hashes.index(row, key_int))
            )
            for row in range(self.depth)
        ]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Reset all counters and row totals."""
        self.counters.clear()
        self._row_totals = [0.0] * self.depth

    @property
    def nbytes(self) -> int:
        """Modelled bytes: counter matrix + one 8 B total per row."""
        return self.counters.nbytes + 8 * self.depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMeanMinSketch(depth={self.depth}, width={self.width}, "
            f"kind={self.counters.kind!r})"
        )

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "CountMeanMinSketch") -> None:
        """Fold another sketch into this one (counters and row totals).

        Both operands must share depth, width and hash seeds; the noise
        correction stays exact because row totals are also summed.
        """
        from repro.common.errors import ParameterError

        if (self.depth, self.width) != (other.depth, other.width):
            raise ParameterError(
                f"cannot merge {self.depth}x{self.width} with "
                f"{other.depth}x{other.width} sketches"
            )
        if self._hashes._seeds != other._hashes._seeds:
            raise ParameterError(
                "cannot merge sketches with different hash seeds"
            )
        merged = self.counters.data.astype(np.float64) + other.counters.data
        if not self.counters._is_float:
            merged = np.clip(merged, self.counters._lo, self.counters._hi)
        self.counters.data = merged.astype(self.counters.data.dtype)
        self._row_totals = [
            a + b for a, b in zip(self._row_totals, other._row_totals)
        ]
