"""Reservoir sampling (Vitter's Algorithm R).

SQUAD complements its per-heavy-key summaries with a uniform sample of
the whole stream so that quantiles of non-heavy keys can still be
answered (coarsely).  :class:`ReservoirSampler` provides that uniform
sample with a fixed memory footprint; :class:`KeyedReservoirSampler`
additionally maintains a key -> values index over the reservoir so
per-key lookups are O(hits) instead of O(capacity) — essential when the
detection adapter queries after every insert.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, Hashable, List, Tuple, TypeVar

from repro.common.validation import require_positive_int

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Maintain a uniform random sample of ``capacity`` stream items.

    After ``n`` calls to :meth:`offer`, every item seen so far is in the
    reservoir with probability ``min(1, capacity / n)`` — the textbook
    Algorithm R invariant.
    """

    def __init__(self, capacity: int, seed: int = 0):
        require_positive_int("capacity", capacity)
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: List[T] = []
        self._seen = 0

    def offer(self, item: T) -> None:
        """Present one stream item to the sampler."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._items[slot] = item

    @property
    def seen(self) -> int:
        """Total number of items offered so far."""
        return self._seen

    def sample(self) -> List[T]:
        """Copy of the current reservoir contents."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        """Empty the reservoir and reset the seen-count."""
        self._items.clear()
        self._seen = 0

    @property
    def nbytes(self) -> int:
        """Modelled bytes: 16 per slot (key 8 B + value 8 B)."""
        return self.capacity * 16


class KeyedReservoirSampler:
    """Algorithm R over ``(key, value)`` pairs with a per-key index.

    Holds the same uniform sample a plain reservoir would (identical
    replacement policy and probabilities) while keeping a ``key ->
    values`` multimap in sync, so :meth:`values_for` answers without
    scanning the reservoir.  The index is bookkeeping over the same
    entries, so modelled memory stays 16 bytes per slot.
    """

    def __init__(self, capacity: int, seed: int = 0):
        require_positive_int("capacity", capacity)
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: List[Tuple[Hashable, float]] = []
        self._index: Dict[Hashable, List[float]] = {}
        self._seen = 0

    def offer(self, key: Hashable, value: float) -> None:
        """Present one stream item to the sampler."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append((key, value))
            self._index.setdefault(key, []).append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot >= self.capacity:
            return
        old_key, old_value = self._items[slot]
        bucket = self._index[old_key]
        bucket.remove(old_value)
        if not bucket:
            del self._index[old_key]
        self._items[slot] = (key, value)
        self._index.setdefault(key, []).append(value)

    def values_for(self, key: Hashable) -> List[float]:
        """Sampled values of ``key`` currently in the reservoir."""
        return list(self._index.get(key, ()))

    @property
    def seen(self) -> int:
        """Total number of items offered so far."""
        return self._seen

    def sample(self) -> List[Tuple[Hashable, float]]:
        """Copy of the current reservoir contents."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        """Empty the reservoir and reset the seen-count."""
        self._items.clear()
        self._index.clear()
        self._seen = 0

    @property
    def nbytes(self) -> int:
        """Modelled bytes: 16 per slot (key 8 B + value 8 B)."""
        return self.capacity * 16
