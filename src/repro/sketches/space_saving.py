"""SpaceSaving heavy-hitter tracker (Metwally, Agrawal & El Abbadi 2005).

SQUAD elects which keys deserve a per-key quantile summary with a
heavy-hitter structure; this is that substrate.  The classic algorithm
keeps ``capacity`` (key, count, error) entries; an unseen key replaces
the current minimum entry and inherits its count as over-estimation
error.

The implementation keeps O(1) amortised updates with a dict plus a lazy
min index (a full min scan only when the cached minimum entry was
displaced), which is plenty for the stream sizes the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.common.validation import require_positive_int


@dataclass
class _Entry:
    count: int
    error: int


class SpaceSaving:
    """Track approximate top-``capacity`` keys by frequency.

    ``count`` over-estimates the true frequency by at most ``error``.
    A key's true frequency ``f`` satisfies ``count - error <= f <= count``.
    """

    def __init__(self, capacity: int):
        require_positive_int("capacity", capacity)
        self.capacity = capacity
        self._entries: Dict[Hashable, _Entry] = {}
        self._min_key: Optional[Hashable] = None  # lazy cache, may be stale

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def update(self, key: Hashable, count: int = 1) -> Optional[Hashable]:
        """Record ``count`` occurrences of ``key``.

        Returns the key that was evicted to make room, or ``None`` when
        nothing was displaced.  SQUAD uses the eviction signal to retire
        the evicted key's quantile summary.
        """
        entry = self._entries.get(key)
        if entry is not None:
            entry.count += count
            if key == self._min_key:
                self._min_key = None  # cached min may no longer be minimal
            return None
        if len(self._entries) < self.capacity:
            self._entries[key] = _Entry(count=count, error=0)
            self._min_key = None
            return None
        victim = self._find_min_key()
        victim_entry = self._entries.pop(victim)
        self._entries[key] = _Entry(
            count=victim_entry.count + count, error=victim_entry.count
        )
        self._min_key = None
        return victim

    def _find_min_key(self) -> Hashable:
        if self._min_key is not None and self._min_key in self._entries:
            return self._min_key
        self._min_key = min(self._entries, key=lambda k: self._entries[k].count)
        return self._min_key

    def estimate(self, key: Hashable) -> int:
        """Upper-bound frequency estimate (0 for untracked keys)."""
        entry = self._entries.get(key)
        return entry.count if entry is not None else 0

    def guaranteed_count(self, key: Hashable) -> int:
        """Lower-bound frequency (``count - error``; 0 if untracked)."""
        entry = self._entries.get(key)
        return entry.count - entry.error if entry is not None else 0

    def keys(self) -> Iterable[Hashable]:
        """Currently tracked keys (insertion order, not sorted)."""
        return self._entries.keys()

    def top(self, k: Optional[int] = None) -> List[Tuple[Hashable, int]]:
        """The ``k`` tracked keys with the highest estimated counts."""
        ranked = sorted(
            self._entries.items(), key=lambda item: item[1].count, reverse=True
        )
        pairs = [(key, entry.count) for key, entry in ranked]
        return pairs if k is None else pairs[:k]

    def clear(self) -> None:
        """Drop all tracked keys."""
        self._entries.clear()
        self._min_key = None

    @property
    def nbytes(self) -> int:
        """Modelled bytes: key (8 B) + count (4 B) + error (4 B) per slot."""
        return self.capacity * 16
