"""Scaling study: how the accuracy-memory transition moves with stream size.

The paper's sweeps run on 20M+-item traces; this reproduction defaults
to tens of thousands.  The claim that makes the small-scale results
transferable is that the accuracy-vs-memory *transition region* scales
with the workload (more precisely, with the key count and the residual
Qweight mass), not with any absolute byte value.  This driver measures
that directly: for a ladder of stream scales it finds the smallest
QuantileFilter budget reaching an F1 target, so the transition's
movement is a measured curve rather than an assumption.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    FigureResult,
    RunRecord,
    build_detector,
    ground_truth_for,
    run_detection,
)
from repro.metrics.accuracy import score_sets
from repro.metrics.throughput import (
    ShardScalingPoint,
    ThroughputResult,
    scaling_table,
)


def minimal_budget_for_f1(
    trace,
    criteria,
    truth,
    f1_target: float,
    dataset: str,
    seed: int = 0,
    low: int = 256,
    high: int = 1 << 22,
) -> Optional[RunRecord]:
    """Smallest power-of-two-ish budget whose F1 meets the target.

    Geometric scan (factor 2) from ``low``; returns the first qualifying
    run's record, or None if even ``high`` fails.
    """
    budget = low
    while budget <= high:
        detector = build_detector("quantilefilter", criteria, budget, seed=seed)
        record = run_detection(
            detector, trace, truth,
            dataset=dataset, memory_bytes=budget, algorithm="quantilefilter",
        )
        if record.score.f1 >= f1_target:
            return record
        budget *= 2
    return None


def scaling_study(
    dataset: str = "internet",
    scales: Sequence[int] = (5_000, 10_000, 20_000, 40_000, 80_000),
    f1_target: float = 0.95,
    seed: int = 0,
) -> FigureResult:
    """Minimal QF budget to reach ``f1_target`` at each stream scale."""
    records: List[RunRecord] = []
    criteria = default_criteria_for(dataset)
    for scale in scales:
        trace = build_trace(dataset, scale=scale, seed=seed)
        truth = ground_truth_for(trace, criteria)
        record = minimal_budget_for_f1(
            trace, criteria, truth, f1_target, dataset, seed=seed
        )
        if record is None:
            continue
        record.extra["scale"] = scale
        record.extra["distinct_keys"] = trace.distinct_keys
        record.extra["truth_keys"] = len(truth)
        record.extra["bytes_per_key"] = round(
            record.memory_bytes / trace.distinct_keys, 3
        )
        records.append(record)
    return FigureResult(
        figure="scaling-study",
        description=f"Minimal QF budget for F1 >= {f1_target} vs stream "
        f"scale on {dataset}",
        records=records,
    )


def shard_ladder(max_shards: int) -> List[int]:
    """Shard counts to sweep: powers of two up to and incl. ``max_shards``."""
    ladder = []
    shards = 1
    while shards < max_shards:
        ladder.append(shards)
        shards *= 2
    ladder.append(max_shards)
    return ladder


def parallel_scaling_study(
    dataset: str = "internet",
    scale: int = 40_000,
    seed: int = 0,
    max_shards: int = 4,
    engine: str = "batch",
    processes: bool = False,
    num_buckets: int = 4_096,
    vague_width: int = 2_048,
) -> FigureResult:
    """Sharded-filter throughput and accuracy vs shard count.

    For every shard count on the ladder the same trace runs through a
    :class:`~repro.parallel.sharded.ShardedQuantileFilter` (in-process;
    deterministic timing) and, with ``processes=True``, additionally
    through the worker-process :class:`~repro.parallel.pipeline.
    ParallelPipeline` — the configuration the ``--shards`` CLI flag
    exercises.  Records carry F1 against the exact ground truth plus
    the speedup/efficiency columns of
    :func:`repro.metrics.throughput.scaling_table`.
    """
    from repro.parallel.pipeline import ParallelPipeline
    from repro.parallel.sharded import ShardedQuantileFilter

    trace = build_trace(dataset, scale=scale, seed=seed)
    criteria = default_criteria_for(dataset)
    truth = ground_truth_for(trace, criteria)
    geometry = dict(num_buckets=num_buckets, vague_width=vague_width, seed=seed)

    records: List[RunRecord] = []
    points: List[ShardScalingPoint] = []
    for shards in shard_ladder(max_shards):
        if processes:
            pipeline = ParallelPipeline(
                criteria, shards, engine=engine, **geometry
            )
            outcome = pipeline.run(trace.keys, trace.values)
            reported, seconds = outcome.reported_keys, outcome.seconds
            nbytes = 0
        else:
            sharded = ShardedQuantileFilter(
                criteria, shards, engine=engine, counter_kind="float",
                **geometry,
            )
            start = time.perf_counter()
            reported = sharded.process(trace.keys, trace.values)
            seconds = time.perf_counter() - start
            nbytes = sharded.nbytes
        points.append(
            ShardScalingPoint(
                shards=shards,
                throughput=ThroughputResult(items=len(trace), seconds=seconds),
            )
        )
        records.append(
            RunRecord(
                algorithm=f"qf-sharded-{engine}",
                dataset=dataset,
                memory_bytes=0,
                actual_bytes=nbytes,
                score=score_sets(reported, truth),
                seconds=seconds,
                items=len(trace),
                extra={
                    "shards": shards,
                    "backend": "processes" if processes else "inprocess",
                },
            )
        )
    for record, row in zip(records, scaling_table(points)):
        record.extra["speedup"] = round(row["speedup"], 3)
        record.extra["efficiency"] = round(row["efficiency"], 3)
    return FigureResult(
        figure="parallel-scaling",
        description=(
            f"Sharded QuantileFilter ({engine} engine, "
            f"{'worker processes' if processes else 'in-process'}) "
            f"throughput vs shard count on {dataset}"
        ),
        records=records,
    )
