"""Scaling study: how the accuracy-memory transition moves with stream size.

The paper's sweeps run on 20M+-item traces; this reproduction defaults
to tens of thousands.  The claim that makes the small-scale results
transferable is that the accuracy-vs-memory *transition region* scales
with the workload (more precisely, with the key count and the residual
Qweight mass), not with any absolute byte value.  This driver measures
that directly: for a ladder of stream scales it finds the smallest
QuantileFilter budget reaching an F1 target, so the transition's
movement is a measured curve rather than an assumption.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    FigureResult,
    RunRecord,
    build_detector,
    ground_truth_for,
    run_detection,
)


def minimal_budget_for_f1(
    trace,
    criteria,
    truth,
    f1_target: float,
    dataset: str,
    seed: int = 0,
    low: int = 256,
    high: int = 1 << 22,
) -> Optional[RunRecord]:
    """Smallest power-of-two-ish budget whose F1 meets the target.

    Geometric scan (factor 2) from ``low``; returns the first qualifying
    run's record, or None if even ``high`` fails.
    """
    budget = low
    while budget <= high:
        detector = build_detector("quantilefilter", criteria, budget, seed=seed)
        record = run_detection(
            detector, trace, truth,
            dataset=dataset, memory_bytes=budget, algorithm="quantilefilter",
        )
        if record.score.f1 >= f1_target:
            return record
        budget *= 2
    return None


def scaling_study(
    dataset: str = "internet",
    scales: Sequence[int] = (5_000, 10_000, 20_000, 40_000, 80_000),
    f1_target: float = 0.95,
    seed: int = 0,
) -> FigureResult:
    """Minimal QF budget to reach ``f1_target`` at each stream scale."""
    records: List[RunRecord] = []
    criteria = default_criteria_for(dataset)
    for scale in scales:
        trace = build_trace(dataset, scale=scale, seed=seed)
        truth = ground_truth_for(trace, criteria)
        record = minimal_budget_for_f1(
            trace, criteria, truth, f1_target, dataset, seed=seed
        )
        if record is None:
            continue
        record.extra["scale"] = scale
        record.extra["distinct_keys"] = trace.distinct_keys
        record.extra["truth_keys"] = len(truth)
        record.extra["bytes_per_key"] = round(
            record.memory_bytes / trace.distinct_keys, 3
        )
        records.append(record)
    return FigureResult(
        figure="scaling-study",
        description=f"Minimal QF budget for F1 >= {f1_target} vs stream "
        f"scale on {dataset}",
        records=records,
    )
