"""Shared machinery for running detectors over traces and scoring them.

One :class:`RunRecord` per (algorithm, configuration, trace) run carries
accuracy, throughput and memory together; figure drivers assemble lists
of records into :class:`FigureResult` objects and
:func:`format_rows` renders them as the text tables the benchmarks
print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set

from repro.common.errors import ParameterError
from repro.baselines.histsketch import HistSketch
from repro.baselines.perkey import PerKeyQuantileStore
from repro.baselines.sketchpolymer import SketchPolymer
from repro.baselines.squad import Squad
from repro.core.criteria import Criteria
from repro.detection.adapters import (
    NaiveDetector,
    QuantileFilterDetector,
    QueryOnInsertAdapter,
)
from repro.detection.base import Detector
from repro.detection.ground_truth import GroundTruthDetector
from repro.experiments.config import PAPER
from repro.metrics.accuracy import DetectionScore, score_sets
from repro.streams.model import Trace

#: Algorithms the harness can build by name.  ``perkey-gk`` is the
#: holistic one-summary-per-key approach; its ``memory_bytes`` budget is
#: converted into an admission cap (keys it can afford at ~600 B each).
ALGORITHMS = (
    "quantilefilter", "naive", "squad", "sketchpolymer", "histsketch",
    "perkey-gk",
)

#: Modelled cost of one holistic per-key GK summary + key (bytes).
_PERKEY_SLOT_BYTES = 600


@dataclass
class RunRecord:
    """One detector run: configuration, accuracy and speed together."""

    algorithm: str
    dataset: str
    memory_bytes: int
    actual_bytes: int
    score: DetectionScore
    seconds: float
    items: int
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def mops(self) -> float:
        """Million items processed per second in this run."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds / 1e6

    def as_dict(self) -> dict:
        row = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "memory_bytes": self.memory_bytes,
            "actual_bytes": self.actual_bytes,
            "seconds": round(self.seconds, 4),
            "mops": round(self.mops, 4),
            **{k: round(v, 4) if isinstance(v, float) else v
               for k, v in self.score.as_dict().items()},
        }
        row.update(self.extra)
        return row


@dataclass
class FigureResult:
    """All runs backing one paper figure, plus identification."""

    figure: str
    description: str
    records: List[RunRecord]

    def rows(self) -> List[dict]:
        """Flat dict rows (for printing and JSON export)."""
        return [record.as_dict() for record in self.records]

    def __str__(self) -> str:
        header = f"== {self.figure}: {self.description} =="
        return header + "\n" + format_rows(self.rows())


def build_detector(
    algorithm: str,
    criteria: Criteria,
    memory_bytes: int,
    seed: int = 0,
    **overrides,
) -> Detector:
    """Construct any registered detector at a byte budget.

    ``overrides`` reach the underlying structure's constructor, so
    parameter sweeps (depth, bucket size, strategy, backend, ...) go
    through here too.
    """
    if algorithm == "quantilefilter":
        kwargs = dict(
            bucket_size=PAPER.bucket_size,
            depth=PAPER.depth,
            candidate_fraction=PAPER.candidate_fraction,
            fp_bits=PAPER.fp_bits,
            seed=seed,
        )
        kwargs.update(overrides)
        return QuantileFilterDetector.build(criteria, memory_bytes, **kwargs)
    if algorithm == "naive":
        return NaiveDetector.build(criteria, memory_bytes, seed=seed, **overrides)
    if algorithm == "squad":
        return QueryOnInsertAdapter(
            Squad(memory_bytes, seed=seed, **overrides), criteria
        )
    if algorithm == "sketchpolymer":
        return QueryOnInsertAdapter(
            SketchPolymer(memory_bytes, seed=seed, **overrides), criteria
        )
    if algorithm == "histsketch":
        return QueryOnInsertAdapter(
            HistSketch(memory_bytes, seed=seed, **overrides), criteria
        )
    if algorithm == "perkey-gk":
        max_keys = max(1, memory_bytes // _PERKEY_SLOT_BYTES)
        return QueryOnInsertAdapter(
            PerKeyQuantileStore(estimator="gk", max_keys=max_keys, **overrides),
            criteria,
        )
    raise ParameterError(
        f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
    )


def ground_truth_for(trace: Trace, criteria: Criteria) -> Set[Hashable]:
    """True outstanding-key set of a trace under ``criteria``."""
    oracle = GroundTruthDetector(criteria)
    for key, value in trace.items():
        oracle.process(key, value)
    return oracle.reported_keys


def run_detection(
    detector: Detector,
    trace: Trace,
    truth: Set[Hashable],
    dataset: str = "",
    memory_bytes: int = 0,
    algorithm: str = "",
) -> RunRecord:
    """Stream the trace through a detector, timing and scoring it."""
    start = time.perf_counter()
    process = detector.process
    for key, value in trace.items():
        process(key, value)
    seconds = time.perf_counter() - start
    return RunRecord(
        algorithm=algorithm or getattr(detector, "name", type(detector).__name__),
        dataset=dataset or trace.name,
        memory_bytes=memory_bytes,
        actual_bytes=detector.nbytes,
        score=score_sets(detector.reported_keys, truth),
        seconds=seconds,
        items=len(trace),
    )


def accuracy_sweep(
    trace: Trace,
    criteria: Criteria,
    algorithms: Sequence[str],
    memory_points: Sequence[int],
    dataset: str = "",
    seed: int = 0,
    truth: Optional[Set[Hashable]] = None,
    detector_overrides: Optional[Dict[str, dict]] = None,
) -> List[RunRecord]:
    """The Fig. 4/5 core loop: every algorithm at every byte budget."""
    if truth is None:
        truth = ground_truth_for(trace, criteria)
    detector_overrides = detector_overrides or {}
    records = []
    for algorithm in algorithms:
        for memory in memory_points:
            detector = build_detector(
                algorithm,
                criteria,
                memory,
                seed=seed,
                **detector_overrides.get(algorithm, {}),
            )
            records.append(
                run_detection(
                    detector,
                    trace,
                    truth,
                    dataset=dataset or trace.name,
                    memory_bytes=memory,
                    algorithm=algorithm,
                )
            )
    return records


def format_rows(rows: List[dict]) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [columns]
    for row in rows:
        table.append([_fmt(row.get(col, "")) for col in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
        for line in table
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
