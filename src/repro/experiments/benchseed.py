"""Synthetic first trend run from the committed BENCH_*.json snapshots.

The matrix trend report (:mod:`repro.experiments.trend`) plots whatever
runs the run store holds — which on a fresh checkout is nothing, even
though the repository *does* carry cross-revision performance history:
the committed ``BENCH_throughput.json``, ``BENCH_observability.json``
and ``BENCH_controller.json`` gate snapshots.  :func:`bench_seed_run`
adapts those three files into one synthetic
:class:`~repro.experiments.runstore.RunData` so ``repro matrix report``
shows a non-empty trajectory from the very first persisted run.

The seed run is deliberately pinned to ``created_unix=0.0``: the trend
merge orders runs by ``(created_unix, run_id)``, so the bench snapshot
always sorts as the oldest point and every real run lands after it.  It
is injected at report time only — never written into the run store, and
never used as a gate baseline (gates compare persisted runs, whose
cells the seed does not share).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.experiments.runstore import SCHEMA_VERSION, RunData

PathLike = Union[str, Path]

#: The committed gate snapshots the seed run is assembled from.
BENCH_FILES = (
    "BENCH_throughput.json",
    "BENCH_observability.json",
    "BENCH_controller.json",
)

BENCH_SEED_RUN_ID = "bench-seed"


def default_bench_root() -> Path:
    """The repository root (where the BENCH_*.json files live)."""
    return Path(__file__).resolve().parents[3]


def _read(root: Path, name: str) -> Optional[dict]:
    path = root / name
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def _record(cell_id: str, workload: str, config: str, scale: int,
            memory_bytes: int, items_per_s: float) -> dict:
    """One trend-compatible cell record (timing only, no accuracy)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "cell_id": cell_id,
        "cell": {
            "workload": workload,
            "algorithm": "quantilefilter",
            "engine": config,
            "scale": scale,
            "memory_bytes": memory_bytes,
        },
        "timing": {"items_per_s": round(float(items_per_s), 1)},
        "accuracy": {"overall": {}, "band": {}},
    }


def bench_seed_run(root: Optional[PathLike] = None) -> Optional[RunData]:
    """The committed bench snapshots as one synthetic RunData.

    Returns ``None`` when none of the three BENCH files is readable
    (e.g. a stripped-down deployment), so callers can skip the seed
    without special-casing.
    """
    root = Path(root) if root is not None else default_bench_root()
    records = {}

    throughput = _read(root, "BENCH_throughput.json")
    if throughput:
        items = int(throughput.get("items", 0))
        pipeline_items = int(throughput.get("pipeline_items", items))
        memory = int(throughput.get("memory_bytes", 0))
        for config, rate in (throughput.get("items_per_s") or {}).items():
            scale = pipeline_items if config.startswith("pipeline") else items
            cell_id = f"bench/throughput/{config}"
            records[cell_id] = _record(
                cell_id, throughput.get("workload", "fig8-internet"),
                config, scale, memory, rate,
            )

    observability = _read(root, "BENCH_observability.json")
    if observability:
        items = int(observability.get("items", 0))
        for config in ("baseline", "disabled", "traced", "health",
                       "chunked", "recorded"):
            mops = observability.get(f"{config}_mops")
            if mops is None:
                continue
            cell_id = f"bench/observability/{config}"
            records[cell_id] = _record(
                cell_id, "observability-overhead", config, items, 0,
                float(mops) * 1e6,
            )

    controller = _read(root, "BENCH_controller.json")
    if controller:
        items = controller.get("items") or {}
        for engine in ("scalar", "batch"):
            mops = controller.get(f"{engine}_baseline_mops")
            if mops is None:
                continue
            cell_id = f"bench/controller/{engine}"
            records[cell_id] = _record(
                cell_id, "controller-overhead", engine,
                int(items.get(engine, 0)), 0, float(mops) * 1e6,
            )

    if not records:
        return None
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "run_id": BENCH_SEED_RUN_ID,
        "created_unix": 0.0,
        "git_revision": "committed-bench-snapshots",
        "config_hash": "bench-files",
        "config": {"source": list(BENCH_FILES)},
    }
    return RunData(
        run_id=BENCH_SEED_RUN_ID, manifest=manifest, records=records
    )
