"""Experiment harness reproducing the paper's evaluation (Figs. 4-15).

:mod:`repro.experiments.figures` holds one driver per paper figure; each
returns a :class:`~repro.experiments.harness.FigureResult` whose rows
are the same series the paper plots.  ``repro-experiments`` (the CLI in
:mod:`repro.experiments.cli`) runs them from the command line, and the
``benchmarks/`` tree runs them under pytest-benchmark.

The evaluation *grid* itself — variant × workload × memory × scale,
with baseline head-to-heads at every point — is driven by
:mod:`repro.experiments.matrix` (``repro matrix run``), persisted per
revision by :mod:`repro.experiments.runstore` and turned into trend
reports and regression verdicts by :mod:`repro.experiments.trend`
(``repro matrix report|gate``).
"""

from repro.experiments.config import (
    PaperDefaults,
    DatasetSpec,
    DATASETS,
    build_trace,
    default_criteria_for,
)
from repro.experiments.harness import (
    FigureResult,
    RunRecord,
    build_detector,
    run_detection,
    accuracy_sweep,
    format_rows,
)
from repro.experiments.matrix import (
    CellSpec,
    expand_cells,
    load_matrix_config,
    run_cell,
    run_matrix,
)
from repro.experiments.runstore import (
    RunData,
    RunStore,
    record_fingerprint,
)
from repro.experiments.trend import (
    GatePolicy,
    GateResult,
    evaluate_gates,
    merge_runs,
    render_markdown,
)

__all__ = [
    "PaperDefaults",
    "DatasetSpec",
    "DATASETS",
    "build_trace",
    "default_criteria_for",
    "FigureResult",
    "RunRecord",
    "build_detector",
    "run_detection",
    "accuracy_sweep",
    "format_rows",
    "CellSpec",
    "expand_cells",
    "load_matrix_config",
    "run_cell",
    "run_matrix",
    "RunData",
    "RunStore",
    "record_fingerprint",
    "GatePolicy",
    "GateResult",
    "evaluate_gates",
    "merge_runs",
    "render_markdown",
]
