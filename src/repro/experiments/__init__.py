"""Experiment harness reproducing the paper's evaluation (Figs. 4-15).

:mod:`repro.experiments.figures` holds one driver per paper figure; each
returns a :class:`~repro.experiments.harness.FigureResult` whose rows
are the same series the paper plots.  ``repro-experiments`` (the CLI in
:mod:`repro.experiments.cli`) runs them from the command line, and the
``benchmarks/`` tree runs them under pytest-benchmark.
"""

from repro.experiments.config import (
    PaperDefaults,
    DatasetSpec,
    DATASETS,
    build_trace,
    default_criteria_for,
)
from repro.experiments.harness import (
    FigureResult,
    RunRecord,
    build_detector,
    run_detection,
    accuracy_sweep,
    format_rows,
)

__all__ = [
    "PaperDefaults",
    "DatasetSpec",
    "DATASETS",
    "build_trace",
    "default_criteria_for",
    "FigureResult",
    "RunRecord",
    "build_detector",
    "run_detection",
    "accuracy_sweep",
    "format_rows",
]
