"""Cross-run trends and regression gates over persisted matrix runs.

:func:`merge_runs` folds any number of loaded runs into per-cell
series ordered by run creation time (ties broken by run id, so merging
is order-insensitive — the property the run-store tests pin).  The
series feed two consumers:

* :func:`render_markdown` / :func:`render_html` — the trend report:
  accuracy-vs-memory curves from the newest run, items/s trajectories
  for every cell across recorded revisions, and the regression flags.
* :func:`evaluate_gates` — ratio gates generalizing the throughput
  bench's 15 % rule: a candidate run fails when any cell's throughput
  falls below ``min_throughput_ratio`` × baseline or its F1 (overall or
  in-band) drops more than ``max_f1_drop`` absolute.  Cells without a
  baseline counterpart and baseline measurements poisoned by counter
  resets (non-positive or non-finite throughput) are *notes*, not
  failures — a new cell or a corrupted baseline must not block a PR —
  but a non-positive candidate throughput is always a violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import format_rows
from repro.experiments.runstore import RunData

#: One trend series: ``[(run, record), ...]`` oldest run first.
CellSeries = List[Tuple[RunData, dict]]


def merge_runs(runs: Sequence[RunData]) -> Dict[str, CellSeries]:
    """Per-cell history across runs, oldest first.

    Input order does not matter: series are sorted by each run's
    ``(created_unix, run_id)`` key, so histories merged from differently
    ordered run lists are identical.
    """
    series: Dict[str, CellSeries] = {}
    for run in sorted(runs, key=RunData.sort_key):
        for cell_id, record in sorted(run.records.items()):
            series.setdefault(cell_id, []).append((run, record))
    return series


def _throughput(record: dict) -> float:
    try:
        return float(record["timing"]["items_per_s"])
    except (KeyError, TypeError, ValueError):
        return float("nan")


def _f1(record: dict, which: str = "overall") -> float:
    try:
        return float(record["accuracy"][which]["f1"])
    except (KeyError, TypeError, ValueError):
        return float("nan")


# ----------------------------------------------------------------------
# regression gates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GatePolicy:
    """Ratio thresholds a candidate run must hold against the baseline."""

    min_throughput_ratio: float = 0.85
    max_f1_drop: float = 0.05
    max_band_f1_drop: float = 0.10

    @classmethod
    def from_config(cls, config: dict) -> "GatePolicy":
        gate = (config or {}).get("gate", {})
        return cls(
            min_throughput_ratio=float(gate.get("min_throughput_ratio", 0.85)),
            max_f1_drop=float(gate.get("max_f1_drop", 0.05)),
            max_band_f1_drop=float(gate.get("max_band_f1_drop", 0.10)),
        )


@dataclass(frozen=True)
class GateViolation:
    """One tripped gate, with the numbers that tripped it."""

    cell_id: str
    metric: str
    baseline: float
    candidate: float
    limit: float

    def __str__(self) -> str:
        return (
            f"{self.cell_id}: {self.metric} regressed — baseline "
            f"{self.baseline:.4g}, candidate {self.candidate:.4g} "
            f"(limit {self.limit:.4g})"
        )


@dataclass
class GateResult:
    """Outcome of gating one candidate run against one baseline run."""

    baseline_run: str
    candidate_run: str
    policy: GatePolicy
    violations: List[GateViolation] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


def evaluate_gates(
    baseline: RunData, candidate: RunData, policy: GatePolicy = GatePolicy()
) -> GateResult:
    """Apply the ratio gates cell by cell."""
    result = GateResult(
        baseline_run=baseline.run_id,
        candidate_run=candidate.run_id,
        policy=policy,
    )
    for cell_id, record in sorted(candidate.records.items()):
        base = baseline.records.get(cell_id)
        if base is None:
            result.notes.append(
                f"{cell_id}: no baseline cell (new in {candidate.run_id})"
            )
            continue

        cand_tp, base_tp = _throughput(record), _throughput(base)
        if not math.isfinite(cand_tp) or cand_tp <= 0:
            result.violations.append(GateViolation(
                cell_id, "items_per_s (invalid measurement)",
                base_tp, cand_tp, 0.0,
            ))
        elif not math.isfinite(base_tp) or base_tp <= 0:
            # Counter reset / corrupt baseline: nothing sane to ratio
            # against, so record it loudly but do not fail the gate.
            result.notes.append(
                f"{cell_id}: baseline throughput unusable "
                f"({base_tp!r}); throughput gate skipped"
            )
        elif cand_tp < policy.min_throughput_ratio * base_tp:
            result.violations.append(GateViolation(
                cell_id, "items_per_s", base_tp, cand_tp,
                policy.min_throughput_ratio * base_tp,
            ))

        for which, budget in (
            ("overall", policy.max_f1_drop),
            ("band", policy.max_band_f1_drop),
        ):
            cand_f1, base_f1 = _f1(record, which), _f1(base, which)
            if not (math.isfinite(cand_f1) and math.isfinite(base_f1)):
                result.notes.append(
                    f"{cell_id}: {which} f1 missing on one side; skipped"
                )
                continue
            if cand_f1 < base_f1 - budget:
                result.violations.append(GateViolation(
                    cell_id, f"{which}_f1", base_f1, cand_f1,
                    base_f1 - budget,
                ))
    for cell_id in sorted(set(baseline.records) - set(candidate.records)):
        result.notes.append(
            f"{cell_id}: present in baseline only (dropped cell?)"
        )
    return result


# ----------------------------------------------------------------------
# trend report rendering
# ----------------------------------------------------------------------
def _short(revision: str) -> str:
    return revision[:10] if revision else "unknown"


def _runs_table(runs: Sequence[RunData]) -> List[dict]:
    rows = []
    for run in sorted(runs, key=RunData.sort_key):
        rows.append({
            "run_id": run.run_id,
            "revision": _short(run.revision),
            "config_hash": run.manifest.get("config_hash", "?"),
            "cells": len(run.records),
            "wall_s": run.manifest.get("wall_seconds", ""),
            "problems": len(run.problems),
        })
    return rows


def _accuracy_curves(latest: RunData) -> Dict[str, List[dict]]:
    """Accuracy-vs-memory tables, one per (workload, algorithm, engine,
    scale) group of the newest run, rows ascending in memory."""
    groups: Dict[str, List[dict]] = {}
    for record in latest.records.values():
        cell = record.get("cell", {})
        label = (
            f"{cell.get('workload')} · {cell.get('algorithm')} "
            f"({cell.get('engine')}) · n={cell.get('scale')}"
        )
        groups.setdefault(label, []).append({
            "memory_bytes": cell.get("memory_bytes", 0),
            "f1": _f1(record),
            "precision": record["accuracy"]["overall"].get("precision"),
            "recall": record["accuracy"]["overall"].get("recall"),
            "band_f1": _f1(record, "band"),
            "band_keys": record["accuracy"]["band"].get("band_keys"),
            "items_per_s": _throughput(record),
        })
    for rows in groups.values():
        rows.sort(key=lambda row: row["memory_bytes"])
    return dict(sorted(groups.items()))


def _trajectory_rows(series: Dict[str, CellSeries]) -> List[dict]:
    rows = []
    for cell_id, history in series.items():
        first_tp = _throughput(history[0][1])
        run, record = history[-1]
        tp = _throughput(record)
        rows.append({
            "cell": cell_id,
            "runs": len(history),
            "first_items_per_s": first_tp,
            "last_items_per_s": tp,
            "ratio_vs_first": (
                round(tp / first_tp, 3)
                if math.isfinite(first_tp) and first_tp > 0 else ""
            ),
            "last_revision": _short(run.revision),
            "f1_now": _f1(record),
        })
    return rows


def render_markdown(
    runs: Sequence[RunData], gate: Optional[GateResult] = None
) -> str:
    """The trend report: one self-contained Markdown document."""
    runs = sorted(runs, key=RunData.sort_key)
    if not runs:
        return "# Matrix trend report\n\n(no persisted runs found)\n"
    latest = runs[-1]
    series = merge_runs(runs)
    lines: List[str] = []
    add = lines.append
    add("# Matrix trend report")
    add("")
    add(
        f"{len(runs)} recorded run(s), {len(series)} distinct cell(s); "
        f"newest run `{latest.run_id}` at revision "
        f"`{_short(latest.revision)}`."
    )
    add("")
    add("## Runs")
    add("")
    add("```")
    add(format_rows(_runs_table(runs)))
    add("```")

    add("")
    add("## Regression flags")
    add("")
    if gate is None:
        add("(gating skipped — fewer than two runs or gating not requested)")
    elif gate.passed:
        add(
            f"**PASS** — `{gate.candidate_run}` vs baseline "
            f"`{gate.baseline_run}` (min throughput ratio "
            f"{gate.policy.min_throughput_ratio}, max F1 drop "
            f"{gate.policy.max_f1_drop})."
        )
    else:
        add(
            f"**FAIL** — {len(gate.violations)} violation(s), "
            f"`{gate.candidate_run}` vs `{gate.baseline_run}`:"
        )
        add("")
        for violation in gate.violations:
            add(f"- {violation}")
    if gate is not None and gate.notes:
        add("")
        for note in gate.notes:
            add(f"> note: {note}")

    add("")
    add("## Accuracy vs memory (newest run)")
    for label, rows in _accuracy_curves(latest).items():
        add("")
        add(f"### {label}")
        add("")
        add("```")
        add(format_rows(rows))
        add("```")

    add("")
    add("## Throughput trajectories across runs")
    add("")
    add("```")
    add(format_rows(_trajectory_rows(series)))
    add("```")

    problems = [
        f"{run.run_id}: {problem}" for run in runs for problem in run.problems
    ]
    if problems:
        add("")
        add("## Load problems")
        add("")
        for problem in problems:
            add(f"- {problem}")
    add("")
    return "\n".join(lines)


def render_html(
    runs: Sequence[RunData], gate: Optional[GateResult] = None
) -> str:
    """Minimal standalone HTML wrapper around the Markdown report."""
    import html as _html

    markdown = render_markdown(runs, gate=gate)
    body: List[str] = []
    in_code = False
    for line in markdown.splitlines():
        if line.startswith("```"):
            body.append("</pre>" if in_code else "<pre>")
            in_code = not in_code
            continue
        if in_code:
            body.append(_html.escape(line))
        elif line.startswith("### "):
            body.append(f"<h3>{_html.escape(line[4:])}</h3>")
        elif line.startswith("## "):
            body.append(f"<h2>{_html.escape(line[3:])}</h2>")
        elif line.startswith("# "):
            body.append(f"<h1>{_html.escape(line[2:])}</h1>")
        elif line.startswith("- "):
            body.append(f"<li>{_html.escape(line[2:])}</li>")
        elif line.startswith("> "):
            body.append(
                f"<blockquote>{_html.escape(line[2:])}</blockquote>"
            )
        else:
            body.append(f"<p>{_html.escape(line)}</p>" if line else "")
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>Matrix trend report</title><style>"
        "body{font-family:sans-serif;margin:2rem;max-width:70rem}"
        "pre{background:#f6f8fa;padding:.75rem;overflow-x:auto}"
        "blockquote{color:#57606a;margin:.2rem 0}"
        "</style></head><body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
