"""Config-driven experiment matrix: the paper's grid as one command.

The paper's evaluation is a grid — sketch variant × workload × memory ×
threshold — and this module executes it as declared cells instead of
one-off drivers.  A matrix config (TOML or JSON) names the axes::

    [matrix]
    name = "smoke"
    seed = 0
    band_fraction = 0.25        # accuracy band around T (MagnifierSketch)
    shadow_sample_rate = 1      # 1 = exact shadow oracle

    [axes]
    algorithms = ["quantilefilter", "squad"]
    engines = ["scalar", "batch", "pipeline-shm", "threads"]  # quantilefilter only
    workloads = ["internet", "cloud", "drift", "bursty"]
    memory_bytes = [16384, 65536]
    scales = [20000]
    controllers = ["fixed", "p2"]   # adaptive-threshold axis

    [pipeline]
    shards = 2
    chunk_items = 8192

    [controller]                    # adaptive cells only
    deadband = 0.05
    min_dwell_items = 2048
    warmup_items = 1024
    window_items = 2048
    horizon_items = 8192            # 0 = cumulative (never restart)

    [gate]
    min_throughput_ratio = 0.85
    max_f1_drop = 0.05

:func:`expand_cells` turns the axes into the cell list (baseline
algorithms always run on the scalar engine — the engine axis is the
QuantileFilter implementation sweep), :func:`run_matrix` executes every
cell through the existing :mod:`repro.experiments.harness` machinery
and persists one schema-versioned record per cell via
:class:`~repro.experiments.runstore.RunStore`.

Each record scores accuracy twice: *overall* (the classic
reported-vs-truth comparison, restricted to the shadow slice when
``shadow_sample_rate > 1``) and *in a ±band around T* — keys whose
outstanding status flips between thresholds ``T·(1−β)`` and
``T·(1+β)`` are the near-boundary keys where MagnifierSketch argues
accuracy actually matters; both use
:class:`~repro.detection.shadow.ShadowAccuracyEstimator` so the same
estimator serves offline evaluation here and live monitoring in the
health layer.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.detection.shadow import ShadowAccuracyEstimator
from repro.detection.threshold import (
    ESTIMATOR_BACKENDS,
    ThresholdControlLoop,
    ThresholdController,
)
from repro.experiments.config import DATASETS, PAPER, build_trace
from repro.experiments.harness import build_detector
from repro.experiments.runstore import (
    SCHEMA_VERSION,
    RunStore,
    config_hash,
)
from repro.metrics.accuracy import score_sets
from repro.streams.model import Trace

try:  # stdlib from Python 3.11; JSON configs work everywhere
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - version-dependent
    tomllib = None

PathLike = Union[str, Path]

#: QuantileFilter implementations the engine axis can select.
ENGINES = ("scalar", "batch", "pipeline-shm", "threads")

#: Engine-axis values that spin up a parallel deployment (worker
#: processes or updater threads); only meaningful for quantilefilter
#: cells, and excluded from the adaptive-controller cross.
_PARALLEL_ENGINES = ("pipeline-shm", "threads")

#: Baseline algorithms allowed next to "quantilefilter" on the
#: algorithm axis (all run through the scalar detector adapters).
BASELINES = ("squad", "sketchpolymer", "histsketch", "naive", "perkey-gk")

#: Threshold-control axis values: a fixed T, or one of the adaptive
#: estimator backends from :mod:`repro.detection.threshold`.
CONTROLLERS = ("fixed",) + ESTIMATOR_BACKENDS

#: Default run-directory root, relative to the repo checkout.
DEFAULT_RUNS_ROOT = "benchmarks/results/runs"

#: Chunk size for feeding the shadow estimators (vectorised path).
_SHADOW_CHUNK = 65_536

#: Items between controller observations in controlled cells — finer
#: than the measurement window so reaction lag at a regime switch
#: mis-calibrates a fraction of a window, not all of it.
_CONTROL_CADENCE = 256


# ----------------------------------------------------------------------
# config loading and expansion
# ----------------------------------------------------------------------
def load_matrix_config(path: PathLike) -> dict:
    """Load a TOML (``.toml``) or JSON matrix config file."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise ParameterError(
                f"TOML configs need Python >= 3.11 (reading {path}); "
                "use the JSON form on older interpreters"
            )
        try:
            with path.open("rb") as handle:
                return tomllib.load(handle)
        except OSError as exc:
            raise ParameterError(f"cannot read matrix config {path}: {exc}")
        except tomllib.TOMLDecodeError as exc:
            raise ParameterError(f"unparseable matrix config {path}: {exc}")
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise ParameterError(f"cannot read matrix config {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ParameterError(f"unparseable matrix config {path}: {exc}")


@dataclass(frozen=True)
class CellSpec:
    """One fully-resolved matrix cell (everything a run needs)."""

    workload: str
    algorithm: str
    engine: str
    memory_bytes: int
    scale: int
    seed: int
    threshold: float
    delta: float
    epsilon: float
    band_fraction: float
    shadow_sample_rate: int
    shards: int = 1
    chunk_items: int = 8_192
    # Adaptive-threshold control (docs/adaptive-thresholds.md).  The
    # default "fixed" keeps every pre-existing cell id and behaviour
    # unchanged; "p2"/"kll" close the loop on T with that estimator.
    controller: str = "fixed"
    controller_deadband: float = 0.05
    controller_dwell: int = 2_048
    controller_warmup: int = 1_024
    controller_window: int = 2_048
    controller_horizon: int = 8_192  # 0 = cumulative (never restart)

    @property
    def cell_id(self) -> str:
        base = (
            f"{self.workload}/{self.algorithm}/{self.engine}"
            f"/m{self.memory_bytes}/n{self.scale}"
        )
        if self.controller != "fixed":
            base += f"/c-{self.controller}"
        return base

    def criteria(self) -> Criteria:
        return Criteria(
            delta=self.delta, threshold=self.threshold, epsilon=self.epsilon
        )


def expand_cells(config: dict) -> List[CellSpec]:
    """Cross the config's axes into the concrete cell list.

    The engine axis sweeps QuantileFilter implementations only;
    baseline algorithms contribute one scalar-engine cell per
    (workload, memory, scale) point so every head-to-head happens at
    every matrix point without a meaningless baseline × engine blowup.
    """
    matrix = config.get("matrix", {})
    axes = config.get("axes", {})
    pipeline = config.get("pipeline", {})
    criteria_cfg = config.get("criteria", {})
    controller_cfg = config.get("controller", {})

    workloads = list(axes.get("workloads", ["internet"]))
    algorithms = list(axes.get("algorithms", ["quantilefilter"]))
    engines = list(axes.get("engines", ["scalar"]))
    memory_points = [int(m) for m in axes.get("memory_bytes", [1 << 16])]
    scales = [int(s) for s in axes.get("scales", [20_000])]
    controllers = list(axes.get("controllers", ["fixed"]))

    for workload in workloads:
        if workload not in DATASETS:
            raise ParameterError(
                f"unknown workload {workload!r}; choose from {sorted(DATASETS)}"
            )
    for engine in engines:
        if engine not in ENGINES:
            raise ParameterError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
    for algorithm in algorithms:
        if algorithm != "quantilefilter" and algorithm not in BASELINES:
            raise ParameterError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{('quantilefilter',) + BASELINES}"
            )
    for controller in controllers:
        if controller not in CONTROLLERS:
            raise ParameterError(
                f"unknown controller {controller!r}; choose from {CONTROLLERS}"
            )
    if "quantilefilter" not in algorithms:
        parallel = [e for e in engines if e in _PARALLEL_ENGINES]
        if parallel:
            raise ParameterError(
                f"engines {parallel} apply only to 'quantilefilter' cells; "
                "baseline algorithms always run on the scalar engine — add "
                "'quantilefilter' to axes.algorithms or drop those engines"
            )

    common = dict(
        seed=int(matrix.get("seed", 0)),
        delta=float(criteria_cfg.get("delta", PAPER.delta)),
        epsilon=float(criteria_cfg.get("epsilon", PAPER.epsilon)),
        band_fraction=float(matrix.get("band_fraction", 0.25)),
        shadow_sample_rate=int(matrix.get("shadow_sample_rate", 1)),
        shards=int(pipeline.get("shards", 2)),
        chunk_items=int(pipeline.get("chunk_items", 8_192)),
        controller_deadband=float(controller_cfg.get("deadband", 0.05)),
        controller_dwell=int(controller_cfg.get("min_dwell_items", 2_048)),
        controller_warmup=int(controller_cfg.get("warmup_items", 1_024)),
        controller_window=int(controller_cfg.get("window_items", 2_048)),
        controller_horizon=int(controller_cfg.get("horizon_items", 8_192)),
    )

    cells: List[CellSpec] = []
    for workload in workloads:
        threshold = float(
            criteria_cfg.get("threshold", DATASETS[workload].default_threshold)
        )
        for scale in scales:
            for memory in memory_points:
                point = dict(
                    workload=workload, scale=scale, memory_bytes=memory,
                    threshold=threshold, **common,
                )
                for algorithm in algorithms:
                    if algorithm == "quantilefilter":
                        for engine in engines:
                            for controller in controllers:
                                # The adaptive loop drives retarget()
                                # on in-process engines; the pipeline
                                # broadcast path has its own
                                # integration test rather than a
                                # matrix sweep, so skip that combo
                                # instead of crossing it.
                                if (controller != "fixed"
                                        and engine in _PARALLEL_ENGINES):
                                    continue
                                cells.append(CellSpec(
                                    algorithm=algorithm, engine=engine,
                                    controller=controller, **point,
                                ))
                    else:
                        # Baselines have no retarget path: fixed only.
                        cells.append(CellSpec(
                            algorithm=algorithm, engine="scalar", **point
                        ))
    return cells


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def _run_scalar(spec: CellSpec, trace: Trace):
    detector = build_detector(
        spec.algorithm, spec.criteria(), spec.memory_bytes, seed=spec.seed
    )
    process = detector.process
    start = time.perf_counter()
    for key, value in trace.items():
        process(key, value)
    seconds = time.perf_counter() - start
    return detector.reported_keys, seconds, detector.nbytes


def _run_batch(spec: CellSpec, trace: Trace):
    from repro.core.vectorized import BatchQuantileFilter

    engine = BatchQuantileFilter(
        spec.criteria(),
        spec.memory_bytes,
        bucket_size=PAPER.bucket_size,
        depth=PAPER.depth,
        candidate_fraction=PAPER.candidate_fraction,
        fp_bits=PAPER.fp_bits,
        seed=spec.seed,
    )
    start = time.perf_counter()
    reported = engine.process(trace.keys, trace.values)
    seconds = time.perf_counter() - start
    return reported, seconds, engine.nbytes


def _run_pipeline_shm(spec: CellSpec, trace: Trace):
    from repro.parallel.pipeline import ParallelPipeline

    pipeline = ParallelPipeline(
        spec.criteria(),
        spec.shards,
        engine="batch",
        transport="shm",
        memory_bytes=max(1 << 10, spec.memory_bytes // spec.shards),
        chunk_items=spec.chunk_items,
        seed=spec.seed,
        bucket_size=PAPER.bucket_size,
        depth=PAPER.depth,
        fp_bits=PAPER.fp_bits,
    )
    outcome = pipeline.run(trace.keys, trace.values)
    return outcome.reported_keys, outcome.seconds, 0


def _run_threads(spec: CellSpec, trace: Trace):
    # Unlike pipeline-shm the memory budget is NOT divided by the shard
    # count: all updater threads share one set of filter planes, so the
    # whole budget buys one full-size structure.
    from repro.parallel.pipeline import ParallelPipeline

    pipeline = ParallelPipeline(
        spec.criteria(),
        spec.shards,
        engine="threads",
        memory_bytes=max(1 << 10, spec.memory_bytes),
        chunk_items=spec.chunk_items,
        seed=spec.seed,
        bucket_size=PAPER.bucket_size,
        depth=PAPER.depth,
        fp_bits=PAPER.fp_bits,
    )
    outcome = pipeline.run(trace.keys, trace.values)
    return outcome.reported_keys, outcome.seconds, pipeline.filter.nbytes


_ENGINE_RUNNERS: Dict[str, Callable] = {
    "scalar": _run_scalar,
    "batch": _run_batch,
    "pipeline-shm": _run_pipeline_shm,
    "threads": _run_threads,
}


def _build_quantilefilter(spec: CellSpec):
    """The engine instance a controlled cell drives via ``retarget()``."""
    if spec.engine == "batch":
        from repro.core.vectorized import BatchQuantileFilter

        return BatchQuantileFilter(
            spec.criteria(),
            spec.memory_bytes,
            bucket_size=PAPER.bucket_size,
            depth=PAPER.depth,
            candidate_fraction=PAPER.candidate_fraction,
            fp_bits=PAPER.fp_bits,
            seed=spec.seed,
        )
    if spec.engine != "scalar":
        # Fail loudly rather than silently falling back to the scalar
        # engine (a hand-built CellSpec can reach here with any string).
        raise ParameterError(
            f"controlled cells drive an in-process filter; engine "
            f"{spec.engine!r} is not supported here (use 'scalar' or "
            f"'batch')"
        )
    from repro.core.quantile_filter import QuantileFilter

    return QuantileFilter(
        spec.criteria(),
        spec.memory_bytes,
        bucket_size=PAPER.bucket_size,
        depth=PAPER.depth,
        candidate_fraction=PAPER.candidate_fraction,
        fp_bits=PAPER.fp_bits,
        seed=spec.seed,
    )


def _run_controlled(spec: CellSpec, trace: Trace):
    """Run a cell with the adaptive threshold controller in the loop.

    The stream is fed in control-cadence chunks (``_CONTROL_CADENCE``
    items, capped by the measurement window): the filter processes each
    chunk against the ``T`` currently in force, then the controller
    observes the same chunk and may retarget before the next one — the
    chunk-boundary semantics every ``retarget()`` implementation
    guarantees.  Each chunk's exceedance fraction ``P(v > T)`` against
    its live ``T`` — the quantity quantile tracking actually controls —
    is then aggregated into ``controller_window``-item measurement
    windows; the calibration gate checks the post-warmup windowed rate
    stays near the target rate ``1 − q*`` under drift.  Cadence is
    deliberately finer than the window so reaction lag at a regime
    switch mis-calibrates a fraction of a window, not all of it.
    """
    controller = ThresholdController(
        initial_threshold=spec.threshold,
        target_quantile=spec.delta,
        backend=spec.controller,
        deadband=spec.controller_deadband,
        min_dwell_items=spec.controller_dwell,
        warmup_items=spec.controller_warmup,
        horizon_items=spec.controller_horizon or None,
        seed=spec.seed,
    )
    filt = _build_quantilefilter(spec)
    loop = ThresholdControlLoop(controller, filt)
    reported = set()
    chunks = []
    cadence = max(1, min(_CONTROL_CADENCE, spec.controller_window))
    scalar = spec.engine == "scalar"
    start = time.perf_counter()
    for keys, values in trace.iter_chunks(cadence):
        live_threshold = controller.threshold
        if scalar:
            insert = filt.insert
            for key, value in zip(keys.tolist(), values.tolist()):
                report = insert(key, value)
                if report is not None:
                    reported.add(report.key)
        else:
            reported.update(filt.process(keys, values))
        loop.observe_many(values)
        chunks.append((
            live_threshold,
            float(np.mean(values > live_threshold)),
            int(values.shape[0]),
        ))
    seconds = time.perf_counter() - start

    # Aggregate cadence chunks into measurement windows (exceedance is
    # the item-weighted mean of each chunk's rate against its live T).
    windows = []
    per_window = max(1, spec.controller_window // cadence)
    for at in range(0, len(chunks), per_window):
        group = chunks[at:at + per_window]
        items = sum(c[2] for c in group)
        windows.append({
            "threshold": group[-1][0],
            "exceedance": sum(c[1] * c[2] for c in group) / max(1, items),
            "items": items,
        })

    target_rate = controller.target_rate
    warmup = spec.controller_warmup
    seen = 0
    post_warmup = []
    for window in windows:
        seen += window["items"]
        if seen > warmup:
            post_warmup.append(window["exceedance"])
    mean_rate = float(np.mean(post_warmup)) if post_warmup else float("nan")
    median_rate = (
        float(np.median(post_warmup)) if post_warmup else float("nan")
    )
    tolerance = 0.25
    within = [
        rate for rate in post_warmup
        if abs(rate - target_rate) <= tolerance * target_rate
    ]
    info = {
        "backend": spec.controller,
        "target_quantile": spec.delta,
        "target_rate": target_rate,
        "initial_threshold": spec.threshold,
        "final_threshold": controller.threshold,
        "retargets": controller.retargets,
        "window_items": spec.controller_window,
        "warmup_items": warmup,
        "horizon_items": spec.controller_horizon,
        "estimator_restarts": controller.restarts,
        "deadband": spec.controller_deadband,
        "min_dwell_items": spec.controller_dwell,
        "windows": windows,
        "post_warmup_mean_rate": mean_rate,
        "post_warmup_median_rate": median_rate,
        "rate_tolerance": tolerance,
        "within_tolerance_fraction": (
            len(within) / len(post_warmup) if post_warmup else 0.0
        ),
    }
    return reported, seconds, filt.nbytes, info


def band_accuracy(
    spec: CellSpec, trace: Trace, reported,
    criteria: Optional[Criteria] = None,
) -> dict:
    """Overall and near-threshold accuracy via shadow estimators.

    Three estimators share one salted key slice (same seed ⇒ same
    sample) at thresholds ``T·(1−β)``, ``T`` and ``T·(1+β)``.  The
    *band* keys are those outstanding at the loose threshold but not at
    the strict one — exactly the keys whose verdict a small threshold
    perturbation flips — and the band score restricts both sides of the
    comparison to them.

    ``criteria`` overrides the cell's static criteria: adaptive-
    controller cells pass criteria at the *final* retargeted ``T`` so
    the band brackets the threshold actually in force, not the one the
    run started from.
    """
    criteria = criteria if criteria is not None else spec.criteria()
    beta = spec.band_fraction
    rate, seed = spec.shadow_sample_rate, spec.seed
    mid = ShadowAccuracyEstimator(criteria, sample_rate=rate, seed=seed)
    low = ShadowAccuracyEstimator(
        Criteria(criteria.delta, criteria.threshold * (1.0 - beta),
                 criteria.epsilon),
        sample_rate=rate, seed=seed,
    )
    high = ShadowAccuracyEstimator(
        Criteria(criteria.delta, criteria.threshold * (1.0 + beta),
                 criteria.epsilon),
        sample_rate=rate, seed=seed,
    )
    for keys, values in trace.iter_chunks(_SHADOW_CHUNK):
        mid.observe_batch(keys, values)
        low.observe_batch(keys, values)
        high.observe_batch(keys, values)

    reported = {int(key) for key in reported}
    overall = mid.score(reported).as_dict()
    p, r = overall["precision"], overall["recall"]
    overall["f1"] = 2.0 * p * r / (p + r) if p + r else 0.0
    band_keys = low.true_outstanding - high.true_outstanding
    sampled_reported = {key for key in reported if mid.is_sampled(key)}
    band = score_sets(
        sampled_reported & band_keys, mid.true_outstanding & band_keys
    )
    return {
        "band_fraction": beta,
        "shadow_sample_rate": rate,
        "overall": overall,
        "band": {"band_keys": len(band_keys), **band.as_dict()},
    }


def run_cell(spec: CellSpec) -> dict:
    """Execute one cell and return its (unpersisted) record."""
    trace = build_trace(spec.workload, scale=spec.scale, seed=spec.seed)
    if spec.engine not in _ENGINE_RUNNERS:
        raise ParameterError(
            f"unknown engine {spec.engine!r}; choose from {ENGINES}"
        )
    controller_info = None
    score_criteria = None
    if spec.controller != "fixed":
        if spec.algorithm != "quantilefilter":
            raise ParameterError(
                f"controller {spec.controller!r} needs a retarget() path; "
                f"baseline {spec.algorithm!r} has none"
            )
        if spec.engine in _PARALLEL_ENGINES:
            raise ParameterError(
                "controlled matrix cells run on in-process engines "
                "('scalar'/'batch'); the pipeline broadcast and "
                "thread-rendezvous retarget paths are covered by their "
                "integration tests"
            )
        reported, seconds, actual_bytes, controller_info = _run_controlled(
            spec, trace
        )
        # Score the band around the T actually in force at the end.
        score_criteria = spec.criteria().with_updates(
            threshold=controller_info["final_threshold"]
        )
    else:
        runner = _ENGINE_RUNNERS[spec.engine]
        reported, seconds, actual_bytes = runner(spec, trace)
    items = len(trace)
    record = {
        "schema_version": SCHEMA_VERSION,
        "cell_id": spec.cell_id,
        "cell": asdict(spec),
        "items": items,
        "actual_bytes": int(actual_bytes),
        "reported_keys": len({int(key) for key in reported}),
        "accuracy": band_accuracy(
            spec, trace, reported, criteria=score_criteria
        ),
        "timing": {
            "wall_seconds": round(seconds, 6),
            "items_per_s": round(items / seconds, 1) if seconds > 0 else 0.0,
        },
    }
    if controller_info is not None:
        record["controller"] = controller_info
    return record


def run_matrix(
    config: dict,
    store: RunStore,
    run_id: Optional[str] = None,
    revision: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> str:
    """Execute every cell of ``config`` and persist one run.

    Returns the run id; the run directory holds the manifest (config +
    git revision + config hash) and one record per cell.
    """
    cells = expand_cells(config)
    if not cells:
        raise ParameterError("matrix config expands to zero cells")
    run_id = store.create_run(config, run_id=run_id, revision=revision)
    started = time.perf_counter()
    store.update_manifest(run_id, cells_total=len(cells))
    say = progress or (lambda _line: None)
    say(f"run {run_id}: {len(cells)} cells "
        f"(config hash {config_hash(config)})")
    for index, spec in enumerate(cells, start=1):
        record = run_cell(spec)
        record["started_unix"] = time.time()
        store.write_record(run_id, record)
        say(
            f"  [{index}/{len(cells)}] {spec.cell_id}: "
            f"f1={record['accuracy']['overall']['f1']:.3f} "
            f"band_f1={record['accuracy']['band']['f1']:.3f} "
            f"{record['timing']['items_per_s']:,.0f} items/s"
        )
    store.update_manifest(
        run_id,
        cells_completed=len(cells),
        wall_seconds=round(time.perf_counter() - started, 3),
    )
    return run_id
