"""Command-line entry points for the experiment harness.

Figure drivers (``repro-experiments <figure> [options]``)::

    repro-experiments fig4 --scale 100000 --seed 1
    repro-experiments fig8 --dataset cloud
    repro-experiments all --scale 20000

``all`` runs every figure at the given scale (slow at large scales).

The experiment matrix (also reachable as ``repro matrix ...`` from the
operations CLI)::

    repro-experiments matrix run --config benchmarks/matrix/smoke.json
    repro-experiments matrix report --out matrix_report.md --html out.html
    repro-experiments matrix gate            # exit 1 on regression

``matrix run`` executes every configured cell and persists one
schema-versioned record per cell under the run directory
(``benchmarks/results/runs/<run_id>/`` by default); ``report`` renders
the cross-run trend document; ``gate`` compares the newest run against
a baseline run and fails the process on regression (see
:mod:`repro.experiments.trend`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict

from repro.common.errors import ParameterError
from repro.experiments import figures
from repro.experiments.harness import FigureResult, format_rows
from repro.experiments.scaling import parallel_scaling_study, scaling_study

#: Figure name -> (driver, whether it takes a dataset argument).
_DRIVERS: Dict[str, Callable[..., FigureResult]] = {
    "fig4": figures.fig4_accuracy_internet,
    "fig5": figures.fig5_accuracy_cloud,
    "fig6": figures.fig6_threshold_sweep,
    "fig7": figures.fig7_delta_sweep,
    "fig8": figures.fig8_throughput,
    "fig9": figures.fig9_fig10_parameter_sweeps,
    "fig10": figures.fig9_fig10_parameter_sweeps,
    "fig11": figures.fig11_memory_ratio,
    "fig12": figures.fig12_variants,
    "fig13": figures.fig13_modify_epsilon,
    "fig14": figures.fig14_modify_delta,
    "fig15": figures.fig15_modify_threshold,
    "scaling": scaling_study,
    "parallel": parallel_scaling_study,
}

_DATASET_AWARE = {
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "scaling", "parallel",
}

#: Drivers that do not take the per-figure ``scale`` parameter.
_NO_SCALE = {"scaling"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the QuantileFilter paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_DRIVERS) + ["all", "report"],
        help="which paper figure to regenerate ('report' writes all of "
        "them to one Markdown file)",
    )
    parser.add_argument(
        "--out", default="REPORT.md",
        help="output path for the 'report' command (default REPORT.md)",
    )
    parser.add_argument(
        "--matrix-runs", default=None, metavar="DIR",
        help="for 'report': also append the matrix trend history from "
        "this run store (see 'repro matrix run')",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="stream length (default: the driver's CI-friendly default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--dataset", default=None,
        help="dataset name for dataset-aware figures (internet/cloud/zipf-*)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit rows as JSON instead of a text table",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="max shard count for the 'parallel' scaling study "
        "(sweeps powers of two up to this value; default 4)",
    )
    parser.add_argument(
        "--processes", action="store_true",
        help="back the 'parallel' study with worker processes "
        "(ParallelPipeline) instead of in-process sharding",
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> FigureResult:
    driver = _DRIVERS[name]
    kwargs = {"seed": args.seed}
    if args.scale is not None and name not in _NO_SCALE:
        kwargs["scale"] = args.scale
    if args.dataset is not None and name in _DATASET_AWARE:
        kwargs["dataset"] = args.dataset
    if name == "parallel":
        if args.shards is not None:
            kwargs["max_shards"] = args.shards
        if args.processes:
            kwargs["processes"] = True
    return driver(**kwargs)


# ----------------------------------------------------------------------
# the matrix subcommand family (repro matrix run|report|gate)
# ----------------------------------------------------------------------
def build_matrix_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro matrix",
        description="Run, report and gate the config-driven experiment "
        "matrix (persisted runs under --runs).",
    )
    sub = parser.add_subparsers(dest="matrix_command", required=True)

    run = sub.add_parser(
        "run", help="execute every configured cell and persist one run"
    )
    run.add_argument(
        "--config", required=True,
        help="matrix config file (.toml on Python >= 3.11, or .json)",
    )
    run.add_argument(
        "--runs", default=None,
        help="run-store root (default: the config's [matrix].runs_root, "
        "else benchmarks/results/runs)",
    )
    run.add_argument(
        "--run-id", default=None,
        help="explicit run id (default: UTC timestamp + config hash)",
    )
    run.add_argument(
        "--revision", default=None,
        help="revision label to record (default: git rev-parse HEAD)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress",
    )

    report = sub.add_parser(
        "report", help="render the cross-run trend report"
    )
    report.add_argument("--runs", default=None, help="run-store root")
    report.add_argument(
        "--out", default="matrix_report.md",
        help="Markdown output path (default matrix_report.md)",
    )
    report.add_argument(
        "--html", default=None, help="also write a standalone HTML report",
    )
    report.add_argument(
        "--last", type=int, default=None,
        help="only include the newest N runs",
    )
    report.add_argument(
        "--bench-seed", dest="bench_seed", action="store_true",
        default=True,
        help="prepend the committed BENCH_*.json snapshots as a "
        "synthetic oldest run so the trajectory is never empty "
        "(default on)",
    )
    report.add_argument(
        "--no-bench-seed", dest="bench_seed", action="store_false",
        help="render only the persisted runs",
    )

    gate = sub.add_parser(
        "gate",
        help="compare two runs under the ratio gates; exit 1 on regression",
    )
    gate.add_argument("--runs", default=None, help="run-store root")
    gate.add_argument(
        "--baseline", default=None,
        help="baseline run id (default: second-newest run)",
    )
    gate.add_argument(
        "--candidate", default=None,
        help="candidate run id (default: newest run)",
    )
    gate.add_argument(
        "--min-throughput-ratio", type=float, default=None,
        help="override the policy's minimum candidate/baseline items/s",
    )
    gate.add_argument(
        "--max-f1-drop", type=float, default=None,
        help="override the policy's maximum absolute overall-F1 drop",
    )
    return parser


def _matrix_store(args, config: dict = None):
    from repro.experiments.matrix import DEFAULT_RUNS_ROOT
    from repro.experiments.runstore import RunStore

    root = args.runs
    if root is None and config:
        root = config.get("matrix", {}).get("runs_root")
    return RunStore(Path(root or DEFAULT_RUNS_ROOT))


def _cmd_matrix_run(args) -> int:
    from repro.experiments.matrix import load_matrix_config, run_matrix

    config = load_matrix_config(args.config)
    store = _matrix_store(args, config)
    progress = None if args.quiet else lambda line: print(line, flush=True)
    run_id = run_matrix(
        config, store,
        run_id=args.run_id, revision=args.revision, progress=progress,
    )
    print(f"persisted run {run_id} under {store.root}")
    return 0


def _cmd_matrix_report(args) -> int:
    from repro.experiments.trend import (
        GatePolicy, evaluate_gates, render_html, render_markdown,
    )

    store = _matrix_store(args)
    runs = store.load_all()
    if args.last:
        runs = runs[-args.last:]
    # Gates compare persisted runs only; the bench seed is prepended
    # after the gate pair is chosen (and after --last) so it informs
    # the trajectory without ever acting as a regression baseline.
    gate = None
    if len(runs) >= 2:
        policy = GatePolicy.from_config(runs[-1].manifest.get("config", {}))
        gate = evaluate_gates(runs[-2], runs[-1], policy)
    if getattr(args, "bench_seed", True):
        from repro.experiments.benchseed import bench_seed_run

        seed = bench_seed_run()
        if seed is not None:
            runs = [seed] + runs
    out = Path(args.out)
    out.write_text(render_markdown(runs, gate=gate))
    print(f"trend report over {len(runs)} run(s) written to {out}")
    if args.html:
        Path(args.html).write_text(render_html(runs, gate=gate))
        print(f"HTML report written to {args.html}")
    return 0


def _cmd_matrix_gate(args) -> int:
    from repro.experiments.trend import GatePolicy, evaluate_gates

    store = _matrix_store(args)
    runs = store.load_all()
    by_id = {run.run_id: run for run in runs}

    def pick(run_id, default_index, role):
        if run_id is None:
            if len(runs) < 2:
                print(
                    "gate needs two persisted runs (or explicit "
                    "--baseline/--candidate); found "
                    f"{len(runs)} under {store.root}",
                    file=sys.stderr,
                )
                raise SystemExit(2)
            return runs[default_index]
        try:
            return by_id[run_id]
        except KeyError:
            print(f"no such {role} run: {run_id!r}", file=sys.stderr)
            raise SystemExit(2) from None

    candidate = pick(args.candidate, -1, "candidate")
    baseline = pick(args.baseline, -2, "baseline")
    policy = GatePolicy.from_config(candidate.manifest.get("config", {}))
    overrides = {}
    if args.min_throughput_ratio is not None:
        overrides["min_throughput_ratio"] = args.min_throughput_ratio
    if args.max_f1_drop is not None:
        overrides["max_f1_drop"] = args.max_f1_drop
    if overrides:
        from dataclasses import replace

        policy = replace(policy, **overrides)
    result = evaluate_gates(baseline, candidate, policy)
    for note in result.notes:
        print(f"note: {note}")
    if result.passed:
        print(
            f"gate PASS: {candidate.run_id} vs {baseline.run_id} "
            f"({len(candidate.records)} cells)"
        )
        return 0
    print(
        f"gate FAIL: {len(result.violations)} violation(s), "
        f"{candidate.run_id} vs {baseline.run_id}",
        file=sys.stderr,
    )
    for violation in result.violations:
        print(f"  {violation}", file=sys.stderr)
    return 1


def matrix_main(argv=None) -> int:
    """Entry point for ``repro matrix ...`` / ``repro-experiments matrix``."""
    args = build_matrix_parser().parse_args(argv)
    try:
        if args.matrix_command == "run":
            return _cmd_matrix_run(args)
        if args.matrix_command == "report":
            return _cmd_matrix_report(args)
        return _cmd_matrix_gate(args)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "matrix":
        return matrix_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.figure == "report":
        from repro.experiments.report import write_report

        kwargs = {"seed": args.seed}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.matrix_runs is not None:
            kwargs["matrix_runs"] = args.matrix_runs
        path = write_report(args.out, **kwargs)
        print(f"report written to {path}")
        return 0
    names = sorted(_DRIVERS) if args.figure == "all" else [args.figure]
    # fig9 and fig10 share one driver; don't run it twice under "all".
    if args.figure == "all":
        names.remove("fig10")
    for name in names:
        result = _run_one(name, args)
        if args.json:
            print(json.dumps({"figure": result.figure, "rows": result.rows()}))
        else:
            print(result)
            print()
        if name == "fig4":
            print("-- key result 2: space saving at equal F1 --")
            print(format_rows(figures.space_saving_table(result.records)))
            print()
        if name == "fig8":
            print("-- key result 1: speed ratio at F1 >= 0.5 --")
            print(format_rows(figures.speed_ratio_table(result.records)))
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
