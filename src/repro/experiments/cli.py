"""Command-line entry point: ``repro-experiments <figure> [options]``.

Runs any paper figure's driver and prints its table, e.g.::

    repro-experiments fig4 --scale 100000 --seed 1
    repro-experiments fig8 --dataset cloud
    repro-experiments all --scale 20000

``all`` runs every figure at the given scale (slow at large scales).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from repro.experiments import figures
from repro.experiments.harness import FigureResult, format_rows
from repro.experiments.scaling import parallel_scaling_study, scaling_study

#: Figure name -> (driver, whether it takes a dataset argument).
_DRIVERS: Dict[str, Callable[..., FigureResult]] = {
    "fig4": figures.fig4_accuracy_internet,
    "fig5": figures.fig5_accuracy_cloud,
    "fig6": figures.fig6_threshold_sweep,
    "fig7": figures.fig7_delta_sweep,
    "fig8": figures.fig8_throughput,
    "fig9": figures.fig9_fig10_parameter_sweeps,
    "fig10": figures.fig9_fig10_parameter_sweeps,
    "fig11": figures.fig11_memory_ratio,
    "fig12": figures.fig12_variants,
    "fig13": figures.fig13_modify_epsilon,
    "fig14": figures.fig14_modify_delta,
    "fig15": figures.fig15_modify_threshold,
    "scaling": scaling_study,
    "parallel": parallel_scaling_study,
}

_DATASET_AWARE = {
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "scaling", "parallel",
}

#: Drivers that do not take the per-figure ``scale`` parameter.
_NO_SCALE = {"scaling"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the QuantileFilter paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_DRIVERS) + ["all", "report"],
        help="which paper figure to regenerate ('report' writes all of "
        "them to one Markdown file)",
    )
    parser.add_argument(
        "--out", default="REPORT.md",
        help="output path for the 'report' command (default REPORT.md)",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="stream length (default: the driver's CI-friendly default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--dataset", default=None,
        help="dataset name for dataset-aware figures (internet/cloud/zipf-*)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit rows as JSON instead of a text table",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="max shard count for the 'parallel' scaling study "
        "(sweeps powers of two up to this value; default 4)",
    )
    parser.add_argument(
        "--processes", action="store_true",
        help="back the 'parallel' study with worker processes "
        "(ParallelPipeline) instead of in-process sharding",
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> FigureResult:
    driver = _DRIVERS[name]
    kwargs = {"seed": args.seed}
    if args.scale is not None and name not in _NO_SCALE:
        kwargs["scale"] = args.scale
    if args.dataset is not None and name in _DATASET_AWARE:
        kwargs["dataset"] = args.dataset
    if name == "parallel":
        if args.shards is not None:
            kwargs["max_shards"] = args.shards
        if args.processes:
            kwargs["processes"] = True
    return driver(**kwargs)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure == "report":
        from repro.experiments.report import write_report

        kwargs = {"seed": args.seed}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        path = write_report(args.out, **kwargs)
        print(f"report written to {path}")
        return 0
    names = sorted(_DRIVERS) if args.figure == "all" else [args.figure]
    # fig9 and fig10 share one driver; don't run it twice under "all".
    if args.figure == "all":
        names.remove("fig10")
    for name in names:
        result = _run_one(name, args)
        if args.json:
            print(json.dumps({"figure": result.figure, "rows": result.rows()}))
        else:
            print(result)
            print()
        if name == "fig4":
            print("-- key result 2: space saving at equal F1 --")
            print(format_rows(figures.space_saving_table(result.records)))
            print()
        if name == "fig8":
            print("-- key result 1: speed ratio at F1 >= 0.5 --")
            print(format_rows(figures.speed_ratio_table(result.records)))
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
