"""One driver per paper figure (Figs. 4-15) plus the key-result tables.

Every driver returns a :class:`~repro.experiments.harness.FigureResult`
whose records carry the same series the paper plots — algorithm,
x-axis value (memory / threshold / delta / parameter), precision,
recall, F1 and MOPS.  Scale and seeds are parameters so the benchmarks
can run small while a user can rerun paper-sized sweeps.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.criteria import Criteria
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.ground_truth import GroundTruthDetector
from repro.experiments.config import (
    DEFAULT_SCALE,
    PAPER,
    build_trace,
    default_criteria_for,
    memory_sweep_points,
)
from repro.experiments.harness import (
    FigureResult,
    RunRecord,
    accuracy_sweep,
    build_detector,
    ground_truth_for,
    run_detection,
)
from repro.metrics.accuracy import score_sets
from repro.streams.model import Trace

#: The SOTA comparison set used in Figs. 4-8.
SOTA_ALGORITHMS = ("quantilefilter", "squad", "sketchpolymer", "histsketch")


# ----------------------------------------------------------------------
# Figs. 4 & 5: accuracy vs memory
# ----------------------------------------------------------------------
def fig4_accuracy_internet(
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    memory_points: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = SOTA_ALGORITHMS,
) -> FigureResult:
    """Fig. 4: precision/recall/F1 vs memory on the Internet dataset."""
    return _accuracy_figure(
        "fig4", "internet", scale, seed, memory_points, algorithms
    )


def fig5_accuracy_cloud(
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    memory_points: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = SOTA_ALGORITHMS,
) -> FigureResult:
    """Fig. 5: precision/recall/F1 vs memory on the Cloud dataset."""
    return _accuracy_figure(
        "fig5", "cloud", scale, seed, memory_points, algorithms
    )


def _accuracy_figure(
    figure: str,
    dataset: str,
    scale: int,
    seed: int,
    memory_points: Optional[Sequence[int]],
    algorithms: Sequence[str],
) -> FigureResult:
    trace = build_trace(dataset, scale=scale, seed=seed)
    criteria = default_criteria_for(dataset)
    if memory_points is None:
        memory_points = memory_sweep_points()
    records = accuracy_sweep(
        trace, criteria, algorithms, memory_points, dataset=dataset, seed=seed
    )
    return FigureResult(
        figure=figure,
        description=f"Accuracy vs memory on {dataset} "
        f"(n={len(trace)}, keys={trace.distinct_keys}, "
        f"abnormal={trace.anomaly_fraction(criteria.threshold):.1%})",
        records=records,
    )


# ----------------------------------------------------------------------
# Fig. 6: accuracy vs threshold T
# ----------------------------------------------------------------------
def fig6_threshold_sweep(
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    thresholds: Optional[Sequence[float]] = None,
    memory_points: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Fig. 6: QuantileFilter accuracy across a wide range of T.

    The paper sweeps 1-500 ms (Internet) / 1 ms-4096 ms (Cloud) at
    several memory settings and shows accuracy stays stable.
    """
    trace = build_trace(dataset, scale=scale, seed=seed)
    if thresholds is None:
        # Span the value distribution from its bulk into its tail.
        thresholds = [
            float(np.quantile(trace.values, q))
            for q in (0.30, 0.60, 0.85, 0.95, 0.99)
        ]
    if memory_points is None:
        memory_points = [1 << 10, 1 << 12, 1 << 16]
    records: List[RunRecord] = []
    for threshold in thresholds:
        criteria = default_criteria_for(dataset, threshold=threshold)
        truth = ground_truth_for(trace, criteria)
        for memory in memory_points:
            detector = build_detector("quantilefilter", criteria, memory, seed=seed)
            record = run_detection(
                detector, trace, truth,
                dataset=dataset, memory_bytes=memory, algorithm="quantilefilter",
            )
            record.extra["threshold"] = round(threshold, 3)
            record.extra["abnormal_fraction"] = round(
                trace.anomaly_fraction(threshold), 4
            )
            records.append(record)
    return FigureResult(
        figure="fig6",
        description=f"Accuracy vs threshold T on {dataset}",
        records=records,
    )


# ----------------------------------------------------------------------
# Fig. 7: accuracy vs quantile delta
# ----------------------------------------------------------------------
def fig7_delta_sweep(
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    deltas: Sequence[float] = (0.5, 0.7, 0.9, 0.95, 0.99),
    memory_bytes: int = 1 << 16,
    algorithms: Sequence[str] = SOTA_ALGORITHMS,
) -> FigureResult:
    """Fig. 7: accuracy of all algorithms across queried quantiles."""
    trace = build_trace(dataset, scale=scale, seed=seed)
    records: List[RunRecord] = []
    for delta in deltas:
        criteria = default_criteria_for(dataset, delta=delta)
        truth = ground_truth_for(trace, criteria)
        for algorithm in algorithms:
            detector = build_detector(algorithm, criteria, memory_bytes, seed=seed)
            record = run_detection(
                detector, trace, truth,
                dataset=dataset, memory_bytes=memory_bytes, algorithm=algorithm,
            )
            record.extra["delta"] = delta
            records.append(record)
    return FigureResult(
        figure="fig7",
        description=f"Accuracy vs quantile delta on {dataset} "
        f"at {memory_bytes} bytes",
        records=records,
    )


# ----------------------------------------------------------------------
# Fig. 8: throughput vs memory / accuracy
# ----------------------------------------------------------------------
def fig8_throughput(
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    memory_points: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = SOTA_ALGORITHMS,
) -> FigureResult:
    """Fig. 8: processing speed (MOPS) of every algorithm vs memory.

    QuantileFilter appears twice: the scalar reference engine (same
    substrate as the baselines — the fair ratio) and the numpy batch
    engine (what a production deployment of this package would use).
    """
    trace = build_trace(dataset, scale=scale, seed=seed)
    criteria = default_criteria_for(dataset)
    truth = ground_truth_for(trace, criteria)
    if memory_points is None:
        memory_points = [1 << 14, 1 << 16, 1 << 18]
    records: List[RunRecord] = []
    for memory in memory_points:
        for algorithm in algorithms:
            detector = build_detector(algorithm, criteria, memory, seed=seed)
            record = run_detection(
                detector, trace, truth,
                dataset=dataset, memory_bytes=memory, algorithm=algorithm,
            )
            record.extra["engine"] = "scalar"
            records.append(record)
        records.append(_batch_qf_record(trace, criteria, truth, dataset, memory, seed))
    return FigureResult(
        figure="fig8",
        description=f"Throughput (MOPS) vs memory on {dataset}",
        records=records,
    )


def _batch_qf_record(
    trace: Trace,
    criteria: Criteria,
    truth,
    dataset: str,
    memory: int,
    seed: int,
) -> RunRecord:
    engine = BatchQuantileFilter(
        criteria,
        memory,
        bucket_size=PAPER.bucket_size,
        depth=PAPER.depth,
        candidate_fraction=PAPER.candidate_fraction,
        fp_bits=PAPER.fp_bits,
        seed=seed,
    )
    start = time.perf_counter()
    reported = engine.process(trace.keys, trace.values)
    seconds = time.perf_counter() - start
    record = RunRecord(
        algorithm="quantilefilter",
        dataset=dataset,
        memory_bytes=memory,
        actual_bytes=engine.nbytes,
        score=score_sets(reported, truth),
        seconds=seconds,
        items=len(trace),
    )
    record.extra["engine"] = "batch"
    return record


# ----------------------------------------------------------------------
# Figs. 9 & 10: parameter sweeps (array number d, block length b)
# ----------------------------------------------------------------------
def fig9_fig10_parameter_sweeps(
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    depths: Sequence[int] = (1, 2, 3, 5, 8, 12, 20),
    block_lengths: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
    memory_bytes: int = 1 << 10,
) -> FigureResult:
    """Figs. 9 & 10: accuracy and throughput vs d and vs bucket size b.

    The paper finds both parameters barely move accuracy while d drags
    throughput down (more rows to touch per vague access) — hence its
    d = 3, b = 6 defaults.
    """
    trace = build_trace(dataset, scale=scale, seed=seed)
    criteria = default_criteria_for(dataset)
    truth = ground_truth_for(trace, criteria)
    records: List[RunRecord] = []
    for depth in depths:
        detector = build_detector(
            "quantilefilter", criteria, memory_bytes, seed=seed, depth=depth
        )
        record = run_detection(
            detector, trace, truth,
            dataset=dataset, memory_bytes=memory_bytes, algorithm="quantilefilter",
        )
        record.extra["parameter"] = "depth"
        record.extra["value"] = depth
        records.append(record)
    for block in block_lengths:
        detector = build_detector(
            "quantilefilter", criteria, memory_bytes, seed=seed, bucket_size=block
        )
        record = run_detection(
            detector, trace, truth,
            dataset=dataset, memory_bytes=memory_bytes, algorithm="quantilefilter",
        )
        record.extra["parameter"] = "block_length"
        record.extra["value"] = block
        records.append(record)
    return FigureResult(
        figure="fig9+fig10",
        description=f"Accuracy & throughput vs d and block length on {dataset}",
        records=records,
    )


# ----------------------------------------------------------------------
# Fig. 11: candidate:vague memory proportion
# ----------------------------------------------------------------------
def fig11_memory_ratio(
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    candidate_fractions: Sequence[float] = (
        1 / 17, 1 / 9, 1 / 5, 1 / 3, 1 / 2, 2 / 3, 4 / 5, 8 / 9, 16 / 17
    ),
    memory_bytes: int = 1 << 10,
) -> FigureResult:
    """Fig. 11: accuracy vs the candidate:vague split (1:16 ... 16:1).

    The paper reports the split barely matters away from the extremes
    and standardises on 4:1 (fraction 0.8).
    """
    trace = build_trace(dataset, scale=scale, seed=seed)
    criteria = default_criteria_for(dataset)
    truth = ground_truth_for(trace, criteria)
    records: List[RunRecord] = []
    for fraction in candidate_fractions:
        detector = build_detector(
            "quantilefilter", criteria, memory_bytes,
            seed=seed, candidate_fraction=fraction,
        )
        record = run_detection(
            detector, trace, truth,
            dataset=dataset, memory_bytes=memory_bytes, algorithm="quantilefilter",
        )
        record.extra["candidate_fraction"] = round(fraction, 4)
        ratio = fraction / (1 - fraction)
        record.extra["ratio_candidate_to_vague"] = round(ratio, 3)
        records.append(record)
    return FigureResult(
        figure="fig11",
        description=f"Accuracy vs candidate:vague memory split on {dataset}",
        records=records,
    )


# ----------------------------------------------------------------------
# Fig. 12: algorithm variants (3 strategies x 2 vague backends)
# ----------------------------------------------------------------------
def fig12_variants(
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    memory_points: Optional[Sequence[int]] = None,
    include_squad: bool = True,
) -> FigureResult:
    """Fig. 12: F1 of the six QuantileFilter variants (+ SQUAD reference).

    Variants: {comparative, probabilistic, forceful} x {cs, cms}.  The
    paper finds CS variants best and nearly strategy-independent, with
    CMS degrading from comparative to forceful.
    """
    trace = build_trace(dataset, scale=scale, seed=seed)
    criteria = default_criteria_for(dataset)
    truth = ground_truth_for(trace, criteria)
    if memory_points is None:
        memory_points = memory_sweep_points(large=1 << 14, points=4)
    records: List[RunRecord] = []
    for backend in ("cs", "cms"):
        for strategy in ("comparative", "probabilistic", "forceful"):
            for memory in memory_points:
                detector = build_detector(
                    "quantilefilter", criteria, memory,
                    seed=seed, vague_backend=backend, strategy=strategy,
                )
                record = run_detection(
                    detector, trace, truth,
                    dataset=dataset, memory_bytes=memory,
                    algorithm=f"qf-{strategy[:5]}+{backend}",
                )
                record.extra["strategy"] = strategy
                record.extra["backend"] = backend
                records.append(record)
    if include_squad:
        for memory in memory_points:
            detector = build_detector("squad", criteria, memory, seed=seed)
            records.append(
                run_detection(
                    detector, trace, truth,
                    dataset=dataset, memory_bytes=memory, algorithm="squad",
                )
            )
    return FigureResult(
        figure="fig12",
        description=f"F1 of QuantileFilter variants on {dataset}",
        records=records,
    )


# ----------------------------------------------------------------------
# Figs. 13-15: dynamic modification of epsilon / delta / T
# ----------------------------------------------------------------------
def dynamic_modification_figure(
    field: str,
    modified_values: Sequence[float],
    dataset: str = "internet",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    memory_bytes: int = 1 << 11,
    switch_fraction: float = 0.3,
) -> FigureResult:
    """Figs. 13/14/15: modify one criteria field for half the keys.

    For each candidate value of ``field`` (``"epsilon"``, ``"delta"`` or
    ``"threshold"``), half the distinct keys (by id parity) switch to
    the modified criteria ``switch_fraction`` of the way through the
    stream — in both the detector and the ground truth, per the paper's
    semantics (criteria change resets the key's value set).  Accuracy is
    then scored separately for modified and unmodified keys and compared
    with an unmodified baseline run.
    """
    trace = build_trace(dataset, scale=scale, seed=seed)
    base_criteria = default_criteria_for(dataset)
    modified_keys = {int(k) for k in np.unique(trace.keys) if int(k) % 2 == 0}
    switch_index = int(len(trace) * switch_fraction)

    records: List[RunRecord] = []
    # Baseline: no modification, scored on the same key split.
    base_truth = ground_truth_for(trace, base_criteria)
    base_detector = build_detector(
        "quantilefilter", base_criteria, memory_bytes, seed=seed
    )
    base_record = run_detection(
        base_detector, trace, base_truth,
        dataset=dataset, memory_bytes=memory_bytes, algorithm="quantilefilter",
    )
    for subset_name, subset in (
        ("modified-half", modified_keys),
        ("unmodified-half", None),
    ):
        score = _subset_score(
            base_detector.reported_keys, base_truth, modified_keys, subset_name
        )
        records.append(
            RunRecord(
                algorithm="qf-baseline",
                dataset=dataset,
                memory_bytes=memory_bytes,
                actual_bytes=base_record.actual_bytes,
                score=score,
                seconds=base_record.seconds,
                items=len(trace),
                extra={"field": field, "value": "unchanged", "subset": subset_name},
            )
        )

    for new_value in modified_values:
        new_criteria = base_criteria.with_updates(**{field: new_value})
        truth_detector = GroundTruthDetector(base_criteria)
        detector = build_detector(
            "quantilefilter", base_criteria, memory_bytes, seed=seed
        )
        qf = detector.filter
        start = time.perf_counter()
        for index, (key, value) in enumerate(trace.items()):
            if index == switch_index:
                for mkey in modified_keys:
                    qf.modify_criteria(mkey, new_criteria)
                    truth_detector.set_key_criteria(mkey, new_criteria)
            detector.process(key, value)
            truth_detector.process(key, value)
        seconds = time.perf_counter() - start
        truth = truth_detector.reported_keys
        for subset_name in ("modified-half", "unmodified-half"):
            score = _subset_score(
                detector.reported_keys, truth, modified_keys, subset_name
            )
            records.append(
                RunRecord(
                    algorithm="qf-modified",
                    dataset=dataset,
                    memory_bytes=memory_bytes,
                    actual_bytes=detector.nbytes,
                    score=score,
                    seconds=seconds,
                    items=len(trace),
                    extra={"field": field, "value": new_value, "subset": subset_name},
                )
            )
    figure = {"epsilon": "fig13", "delta": "fig14", "threshold": "fig15"}[field]
    return FigureResult(
        figure=figure,
        description=f"Dynamic modification of {field} on {dataset} "
        f"(half the keys switch at {switch_fraction:.0%} of the stream)",
        records=records,
    )


def _subset_score(reported, truth, modified_keys, subset_name):
    if subset_name == "modified-half":
        keep = lambda key: key in modified_keys  # noqa: E731
    else:
        keep = lambda key: key not in modified_keys  # noqa: E731
    return score_sets(
        {k for k in reported if keep(k)}, {k for k in truth if keep(k)}
    )


def fig13_modify_epsilon(**kwargs) -> FigureResult:
    """Fig. 13: larger epsilon helps modified keys, leaves others alone."""
    return dynamic_modification_figure("epsilon", (5.0, 15.0, 60.0, 120.0), **kwargs)


def fig14_modify_delta(**kwargs) -> FigureResult:
    """Fig. 14: smaller delta raises error on modified keys."""
    return dynamic_modification_figure("delta", (0.5, 0.7, 0.9, 0.99), **kwargs)


def fig15_modify_threshold(dataset: str = "internet", **kwargs) -> FigureResult:
    """Fig. 15: smaller T raises error on (and around) modified keys."""
    base = default_criteria_for(dataset).threshold
    values = [float(round(v, 3)) for v in (base / 8, base / 3, base, base * 3)]
    return dynamic_modification_figure("threshold", values, dataset=dataset, **kwargs)


# ----------------------------------------------------------------------
# Key-result tables (the headline 50-500x space / 10-100x speed claims)
# ----------------------------------------------------------------------
def space_saving_table(
    records: Sequence[RunRecord], f1_targets: Sequence[float] = (0.5, 0.8, 0.9)
) -> List[dict]:
    """Memory each algorithm needs to reach an F1 target, and the ratio.

    For each target, finds the smallest budget at which each algorithm's
    F1 meets it; the space-saving factor is baseline-bytes /
    QuantileFilter-bytes (the paper's Key Result 2).
    """
    by_algorithm: Dict[str, List[RunRecord]] = {}
    for record in records:
        by_algorithm.setdefault(record.algorithm, []).append(record)
    rows = []
    for target in f1_targets:
        needed = {}
        for algorithm, algo_records in by_algorithm.items():
            qualifying = [
                r.memory_bytes for r in algo_records if r.score.f1 >= target
            ]
            needed[algorithm] = min(qualifying) if qualifying else None
        qf_bytes = needed.get("quantilefilter")
        for algorithm, memory in needed.items():
            if algorithm == "quantilefilter":
                continue
            factor = (
                round(memory / qf_bytes, 1)
                if memory is not None and qf_bytes
                else None
            )
            rows.append(
                {
                    "f1_target": target,
                    "baseline": algorithm,
                    "baseline_bytes": memory,
                    "quantilefilter_bytes": qf_bytes,
                    "space_saving_factor": factor,
                }
            )
    return rows


def speed_ratio_table(
    records: Sequence[RunRecord], min_f1: float = 0.5
) -> List[dict]:
    """QuantileFilter's throughput advantage at comparable accuracy.

    Among runs with F1 >= ``min_f1``, compares each baseline's best MOPS
    with QuantileFilter's (the paper's Key Result 1, reported as a ratio
    because the substrate differs from the authors' C++ testbed).
    """
    qualified = [r for r in records if r.score.f1 >= min_f1]
    qf = [
        r for r in qualified
        if r.algorithm == "quantilefilter" and r.extra.get("engine") != "batch"
    ]
    if not qf:
        return []
    qf_mops = max(r.mops for r in qf)
    rows = []
    for algorithm in sorted({r.algorithm for r in qualified}):
        if algorithm == "quantilefilter":
            continue
        candidates = [r.mops for r in qualified if r.algorithm == algorithm]
        if not candidates:
            continue
        baseline_mops = max(candidates)
        rows.append(
            {
                "baseline": algorithm,
                "baseline_mops": round(baseline_mops, 4),
                "quantilefilter_mops": round(qf_mops, 4),
                "speedup": round(qf_mops / baseline_mops, 1)
                if baseline_mops > 0
                else None,
            }
        )
    return rows
