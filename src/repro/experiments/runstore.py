"""Persisted experiment runs: one schema-versioned JSON record per cell.

A *run* is one execution of the experiment matrix (see
:mod:`repro.experiments.matrix`) and lives as a directory::

    <root>/<run_id>/
        manifest.json          # run metadata: revision, config, hashes
        <cell>.json            # one record per executed matrix cell

Records and manifests carry ``schema_version`` so old runs stay
readable as the format evolves: version-N records pass through the
upgrader chain in :data:`UPGRADERS` on load.  Loading is tolerant —
corrupt or partial files are skipped and reported in
:attr:`RunData.problems` instead of aborting, so one bad cell never
hides a whole run's history from the trend report.

Every record separates its *deterministic* payload (cell parameters,
item counts, accuracy) from *volatile* measurement context (wall time,
throughput, git revision, timestamps).  :func:`record_fingerprint`
hashes only the former, which is what the determinism audit asserts:
same config + same seed ⇒ identical fingerprint, run to run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.common.errors import ParameterError

PathLike = Union[str, Path]

#: Current on-disk format version for both manifests and cell records.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Top-level record fields that vary run-to-run on identical inputs;
#: everything else must be bit-identical for a fixed (config, seed).
VOLATILE_FIELDS = ("run_id", "git_revision", "started_unix", "timing")


def _upgrade_v0(record: dict) -> dict:
    """v0 kept wall_seconds / items_per_s at top level; v1 nests them
    under ``timing`` so the volatile split is structural."""
    record = dict(record)
    timing = record.setdefault("timing", {})
    for key in ("wall_seconds", "items_per_s"):
        if key in record:
            timing[key] = record.pop(key)
    record["schema_version"] = 1
    return record


#: version -> upgrader producing the next version.
UPGRADERS: Dict[int, Callable[[dict], dict]] = {0: _upgrade_v0}


def upgrade_record(record: dict) -> dict:
    """Bring a loaded record up to :data:`SCHEMA_VERSION` (or raise)."""
    version = record.get("schema_version")
    if not isinstance(version, int):
        raise ParameterError("record has no integer schema_version")
    if version > SCHEMA_VERSION:
        raise ParameterError(
            f"record schema_version {version} is newer than this "
            f"code's {SCHEMA_VERSION}"
        )
    while version < SCHEMA_VERSION:
        record = UPGRADERS[version](record)
        if record.get("schema_version") == version:
            raise ParameterError(f"upgrader for v{version} did not advance")
        version = record["schema_version"]
    return record


def record_fingerprint(record: dict) -> str:
    """SHA-256 over the record's deterministic payload only.

    Two executions of the same cell with the same seed on any machine
    must produce identical fingerprints; wall time, throughput, git
    revision and run identity are excluded.
    """
    payload = {
        key: value for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


def config_hash(config: dict) -> str:
    """Stable short hash of a matrix config (order-insensitive)."""
    return hashlib.sha256(_canonical_json(config).encode()).hexdigest()[:16]


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def git_revision(cwd: Optional[PathLike] = None) -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def safe_name(text: str) -> str:
    """Collapse a cell id into a filesystem-safe file stem."""
    return _SAFE_NAME.sub("-", text).strip("-") or "cell"


@dataclass
class RunData:
    """One loaded run: manifest + per-cell records + load problems."""

    run_id: str
    manifest: dict
    records: Dict[str, dict] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def created_unix(self) -> float:
        return float(self.manifest.get("created_unix", 0.0))

    @property
    def revision(self) -> str:
        return str(self.manifest.get("git_revision", "unknown"))

    def sort_key(self):
        """Total order for trend merging: creation time, then id."""
        return (self.created_unix, self.run_id)


class RunStore:
    """Directory-of-runs persistence with tolerant loading."""

    def __init__(self, root: PathLike):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def create_run(
        self,
        config: dict,
        run_id: Optional[str] = None,
        revision: Optional[str] = None,
        created_unix: Optional[float] = None,
    ) -> str:
        """Allocate a run directory and write its manifest."""
        created = time.time() if created_unix is None else created_unix
        if run_id is None:
            stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(created))
            run_id = f"{stamp}-{config_hash(config)[:6]}"
        run_dir = self.root / run_id
        if run_dir.exists():
            raise ParameterError(f"run {run_id!r} already exists")
        run_dir.mkdir(parents=True)
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "run_id": run_id,
            "created_unix": created,
            # The revision of the *code under measurement* (this source
            # tree), not of whatever directory holds the run store —
            # stores often live outside the checkout (CI uses /tmp).
            "git_revision": revision or git_revision(Path(__file__).parent),
            "config_hash": config_hash(config),
            "config": config,
            "cells_total": None,
            "cells_completed": 0,
            "wall_seconds": None,
        }
        self._write_json(run_dir / MANIFEST_NAME, manifest)
        return run_id

    def write_record(self, run_id: str, record: dict) -> Path:
        """Persist one cell record (atomically) into the run directory."""
        if "cell_id" not in record:
            raise ParameterError("record must carry a cell_id")
        record.setdefault("schema_version", SCHEMA_VERSION)
        record.setdefault("run_id", run_id)
        path = self.run_dir(run_id) / f"{safe_name(record['cell_id'])}.json"
        self._write_json(path, record)
        return path

    def update_manifest(self, run_id: str, **fields) -> dict:
        """Merge ``fields`` into the run's manifest (e.g. on completion)."""
        path = self.run_dir(run_id) / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest.update(fields)
        self._write_json(path, manifest)
        return manifest

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def run_dir(self, run_id: str) -> Path:
        run_dir = self.root / run_id
        if not run_dir.is_dir():
            raise ParameterError(f"no such run: {run_id!r} under {self.root}")
        return run_dir

    def list_runs(self) -> List[str]:
        """Run ids sorted by manifest creation time (oldest first)."""
        return [run.run_id for run in self.load_all()]

    def load_all(self) -> List[RunData]:
        """Load every run directory, sorted oldest-first."""
        runs = []
        if not self.root.is_dir():
            return runs
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / MANIFEST_NAME).exists():
                runs.append(self.load_run(entry.name))
        runs.sort(key=RunData.sort_key)
        return runs

    def load_run(self, run_id: str) -> RunData:
        """Load one run, skipping (and reporting) unreadable cells."""
        run_dir = self.run_dir(run_id)
        problems: List[str] = []
        manifest: dict = {}
        try:
            manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{MANIFEST_NAME}: {exc}")
        data = RunData(run_id=run_id, manifest=manifest, problems=problems)
        for path in sorted(run_dir.glob("*.json")):
            if path.name == MANIFEST_NAME:
                continue
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                problems.append(f"{path.name}: unreadable ({exc})")
                continue
            if not isinstance(record, dict):
                problems.append(f"{path.name}: not a JSON object")
                continue
            try:
                record = upgrade_record(record)
            except ParameterError as exc:
                problems.append(f"{path.name}: {exc}")
                continue
            cell_id = record.get("cell_id")
            if not cell_id or "timing" not in record:
                problems.append(f"{path.name}: partial record, skipped")
                continue
            data.records[cell_id] = record
        return data
