"""Experiment configuration: paper defaults and dataset registry.

The paper's Section V-A settings are encoded once here:

* QuantileFilter: bucket size b = 6, vague depth d = 3, candidate:vague
  memory split 4:1, 16-bit fingerprints.
* Criteria: delta = 0.95, epsilon = 30; T calibrated per dataset so
  ~5 % of items are "abnormal" (T = 300 ms Internet, 20 s Cloud,
  300 ms Zipf).
* Datasets at a CI-friendly default scale; pass ``scale`` to grow them
  towards the paper's 20M+ items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.streams.bursty import BurstyConfig, generate_bursty_trace
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace
from repro.streams.cloud_like import CloudLikeConfig, generate_cloud_like_trace
from repro.streams.drift import DriftConfig, generate_drift_trace
from repro.streams.model import Trace
from repro.streams.zipf import ZipfConfig, generate_zipf_trace


@dataclass(frozen=True)
class PaperDefaults:
    """Section V-A default algorithm parameters."""

    bucket_size: int = 6
    depth: int = 3
    candidate_fraction: float = 0.8  # candidate:vague = 4:1
    fp_bits: int = 16
    delta: float = 0.95
    epsilon: float = 30.0


PAPER = PaperDefaults()


@dataclass(frozen=True)
class DatasetSpec:
    """One registered dataset: builder plus its default threshold."""

    name: str
    builder: Callable[[int, int], Trace]
    default_threshold: float
    description: str


def _internet(scale: int, seed: int) -> Trace:
    return generate_caida_like_trace(
        CaidaLikeConfig(num_items=scale, num_keys=max(100, scale // 40), seed=seed)
    )


def _cloud(scale: int, seed: int) -> Trace:
    return generate_cloud_like_trace(
        CloudLikeConfig(num_items=scale, recurring_keys=max(100, scale // 50), seed=seed)
    )


def _zipf_large(scale: int, seed: int) -> Trace:
    """Many-key Zipf variant (the paper's 4.2M-key flavour, scaled)."""
    return generate_zipf_trace(
        ZipfConfig(
            num_items=scale,
            num_keys=max(100, scale // 8),
            alpha=1.0,
            offset_mean=140.0,
            offset_std=110.0,
            seed=seed,
        )
    )


def _zipf_small(scale: int, seed: int) -> Trace:
    """Few-key Zipf variant (the paper's 120K-key flavour, scaled)."""
    return generate_zipf_trace(
        ZipfConfig(
            num_items=scale,
            num_keys=max(50, scale // 100),
            alpha=1.3,
            offset_mean=150.0,
            offset_std=120.0,
            seed=seed,
        )
    )


def _drift(scale: int, seed: int) -> Trace:
    """Phase-drifting anomaly trace (the Sec. III-B reset workload)."""
    return generate_drift_trace(
        DriftConfig(
            num_items=scale,
            num_keys=max(100, scale // 60),
            num_phases=min(3, scale),
            seed=seed,
        )
    )


def _bursty(scale: int, seed: int) -> Trace:
    """Burst-punctuated adversarial trace (anomalies in waves)."""
    num_keys = max(50, scale // 50)
    return generate_bursty_trace(
        BurstyConfig(
            num_items=scale,
            num_keys=num_keys,
            burst_length=max(1, scale // 12),
            burst_keys=min(12, num_keys),
            seed=seed,
        )
    )


DATASETS: Dict[str, DatasetSpec] = {
    "internet": DatasetSpec(
        name="internet",
        builder=_internet,
        default_threshold=300.0,  # ms, paper's Internet setting
        description="CAIDA-like backbone trace (Zipfian flows, latency values)",
    ),
    "cloud": DatasetSpec(
        name="cloud",
        builder=_cloud,
        default_threshold=20.0,  # s, paper's Cloud setting
        description="Yahoo-like flow trace (extreme key cardinality, durations)",
    ),
    "zipf-large": DatasetSpec(
        name="zipf-large",
        builder=_zipf_large,
        default_threshold=300.0,  # ms, paper's Zipf setting
        description="Synthetic Zipf trace, many keys (paper's 4.2M-key variant)",
    ),
    "zipf-small": DatasetSpec(
        name="zipf-small",
        builder=_zipf_small,
        default_threshold=300.0,
        description="Synthetic Zipf trace, few keys (paper's 120K-key variant)",
    ),
    "drift": DatasetSpec(
        name="drift",
        builder=_drift,
        default_threshold=300.0,  # background ~60, boosted anomalies ~600
        description="Concept-drift trace (anomalous key set rotates per phase)",
    ),
    "bursty": DatasetSpec(
        name="bursty",
        builder=_bursty,
        default_threshold=300.0,  # background ~120, burst values ~600
        description="Bursty adversarial trace (anomalies arrive in waves)",
    ),
}

#: Default stream length for figure drivers: small enough for CI, large
#: enough that accuracy curves have their asymptotic shape.
DEFAULT_SCALE = 40_000


def build_trace(dataset: str, scale: int = DEFAULT_SCALE, seed: int = 0) -> Trace:
    """Build a registered dataset at the requested scale."""
    try:
        spec = DATASETS[dataset]
    except KeyError:
        raise ParameterError(
            f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}"
        ) from None
    if scale < 1:
        raise ParameterError(f"scale must be >= 1, got {scale}")
    return spec.builder(scale, seed)


def default_criteria_for(
    dataset: str,
    delta: float = PAPER.delta,
    epsilon: float = PAPER.epsilon,
    threshold: float = None,
) -> Criteria:
    """The paper's default criteria with the dataset's threshold."""
    try:
        spec = DATASETS[dataset]
    except KeyError:
        raise ParameterError(
            f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}"
        ) from None
    return Criteria(
        delta=delta,
        threshold=spec.default_threshold if threshold is None else threshold,
        epsilon=epsilon,
    )


def memory_sweep_points(small: int = 1 << 10, large: int = 1 << 19, points: int = 6):
    """Geometric byte-budget ladder for accuracy-vs-memory sweeps.

    The paper sweeps 2^15..2^30 bytes on 20M+ item traces; at the default
    40K-item scale the interesting transition happens between ~1 KB and
    ~512 KB, so those are the defaults.  (The floor stays above SQUAD's
    minimum constructible footprint of ~620 bytes.)
    """
    if points < 2:
        raise ParameterError(f"points must be >= 2, got {points}")
    ratio = (large / small) ** (1.0 / (points - 1))
    return [int(round(small * ratio ** i)) for i in range(points)]
