"""Yahoo-cloud-like flow trace generator.

The paper's Cloud dataset (Yahoo G4 network flows) is distinguished by
its extreme key cardinality: 16.9M distinct keys over 20.5M items —
about 82 % of items belong to keys seen once or twice.  That property
is what breaks HistSketch's memory model (a heavy slot per key) and
stresses every per-key structure, so the generator reproduces it
directly: each item is, with probability ``singleton_fraction``, a
brand-new key; otherwise it is drawn Zipf-style from a recurring-key
universe.  Values are flow durations in seconds with a heavy tail;
the paper's threshold is T = 20 s (~4.6 % of items above).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.streams.caida_like import _choose_anomalous_keys
from repro.streams.model import Trace
from repro.streams.zipf import sample_zipf_keys

#: Default threshold matching the paper's Cloud setting (seconds).
DEFAULT_CLOUD_THRESHOLD_S = 20.0


@dataclass(frozen=True)
class CloudLikeConfig:
    """Parameters of the cloud-like workload.

    Attributes
    ----------
    num_items:
        Stream length.
    singleton_fraction:
        Probability an item introduces a brand-new key (paper ~0.8).
    recurring_keys:
        Universe size of the recurring (multi-item) keys.
    alpha:
        Zipf exponent over the recurring keys.
    base_duration_s:
        Median flow duration of a normal key.
    duration_sigma:
        Log-normal shape of duration noise.
    anomalous_key_fraction, anomaly_boost:
        Recurring keys with inflated duration baselines (the targets).
    """

    num_items: int = 200_000
    singleton_fraction: float = 0.8
    recurring_keys: int = 4_000
    alpha: float = 1.0
    base_duration_s: float = 4.0
    duration_sigma: float = 1.0
    anomalous_key_fraction: float = 0.05
    anomaly_boost: float = 8.0
    anomalous_min_frequency: int = 40
    anomalous_max_frequency: int = 400
    seed: int = 0

    def __post_init__(self):
        if self.num_items < 1 or self.recurring_keys < 1:
            raise ParameterError("num_items and recurring_keys must be >= 1")
        if not 0.0 <= self.singleton_fraction < 1.0:
            raise ParameterError(
                f"singleton_fraction must be in [0, 1), got {self.singleton_fraction}"
            )


def generate_cloud_like_trace(config: CloudLikeConfig = CloudLikeConfig()) -> Trace:
    """Generate the cloud-like high-cardinality trace."""
    rng = np_rng(config.seed, "cloud-like")

    is_singleton = rng.random(config.num_items) < config.singleton_fraction
    num_singletons = int(is_singleton.sum())

    # Recurring keys occupy ids [0, recurring_keys); singletons get
    # fresh ids above that range, one each.
    keys = np.empty(config.num_items, dtype=np.int64)
    keys[is_singleton] = config.recurring_keys + np.arange(num_singletons)
    recurring_draws = sample_zipf_keys(
        config.num_items - num_singletons, config.recurring_keys, config.alpha, rng
    )
    keys[~is_singleton] = recurring_draws

    # Recurring keys have per-key duration baselines; anomalous subset
    # boosted.  Singletons draw a one-off baseline from the same law.
    baselines = config.base_duration_s * rng.lognormal(
        0.0, 0.5, size=config.recurring_keys
    )
    num_anomalous = int(round(config.anomalous_key_fraction * config.recurring_keys))
    anomalous = _choose_anomalous_keys(
        recurring_draws,
        config.recurring_keys,
        num_anomalous,
        config.anomalous_min_frequency,
        config.anomalous_max_frequency,
        rng,
    )
    num_anomalous = anomalous.size
    baselines[anomalous] *= config.anomaly_boost

    noise = rng.lognormal(0.0, config.duration_sigma, size=config.num_items)
    values = np.empty(config.num_items, dtype=np.float64)
    values[~is_singleton] = baselines[recurring_draws] * noise[~is_singleton]
    singleton_baselines = config.base_duration_s * rng.lognormal(
        0.0, 0.5, size=num_singletons
    )
    values[is_singleton] = singleton_baselines * noise[is_singleton]

    return Trace(
        keys=keys,
        values=values,
        name=f"cloud-like(singletons={config.singleton_fraction:.0%})",
        metadata={
            "generator": "cloud_like",
            "num_items": config.num_items,
            "singleton_fraction": config.singleton_fraction,
            "recurring_keys": config.recurring_keys,
            "anomalous_keys": int(num_anomalous),
            "default_threshold_s": DEFAULT_CLOUD_THRESHOLD_S,
            "seed": config.seed,
        },
    )
