"""Live-stream plumbing: hook detectors to iterables and pipelines.

The experiment harness replays finite :class:`~repro.streams.model.Trace`
objects; a deployment consumes an unbounded iterator (a socket reader, a
Kafka consumer, a log tail).  These helpers bridge the two:

* :func:`detect_stream` — lazily yield reports as a detector consumes an
  iterable of ``(key, value)`` pairs.
* :func:`batch_detect_stream` — same, but buffering into numpy chunks
  for the :class:`~repro.core.vectorized.BatchQuantileFilter` engine.
* :func:`detect_chunk_stream` — array-native variant consuming
  ``(keys, values)`` ndarray chunks directly (pairs with
  :meth:`~repro.streams.model.Trace.iter_chunks`); no per-item tuples.
* :func:`replay` — convenience: run a whole trace through a detector.
* :func:`interleave_traces` — deterministically mix several traces into
  one (multi-source monitors).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.core.quantile_filter import Report
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.base import Detector
from repro.streams.model import Trace

Item = Tuple[Hashable, float]


def detect_stream(
    detector, items: Iterable[Item]
) -> Iterator[Report]:
    """Yield each report the moment its item triggers it.

    ``detector`` may be a :class:`~repro.core.quantile_filter.QuantileFilter`
    (or anything with ``insert(key, value) -> Optional[Report]``); the
    iterator is lazy, so it works on unbounded sources::

        for report in detect_stream(qf, tail_log()):
            page(report.key)
    """
    insert = detector.insert
    for key, value in items:
        report = insert(key, value)
        if report is not None:
            yield report


def batch_detect_stream(
    engine: BatchQuantileFilter,
    items: Iterable[Item],
    chunk_items: int = 8_192,
) -> Iterator[Tuple[int, set]]:
    """Feed an iterable through the batch engine, chunk by chunk.

    Yields ``(items_processed_so_far, newly_reported_keys)`` after each
    chunk.  Report granularity is the chunk (the batch engine trades
    per-item callbacks for hash vectorisation); use :func:`detect_stream`
    when per-item latency matters more than throughput.
    """
    if chunk_items < 1:
        raise ParameterError(f"chunk_items must be >= 1, got {chunk_items}")
    keys_buffer = []
    values_buffer = []
    known: set = set(engine.reported_keys)
    for key, value in items:
        keys_buffer.append(key)
        values_buffer.append(value)
        if len(keys_buffer) >= chunk_items:
            yield from _flush(engine, keys_buffer, values_buffer, known)
    if keys_buffer:
        yield from _flush(engine, keys_buffer, values_buffer, known)


def _flush(engine, keys_buffer, values_buffer, known):
    engine.process(
        np.asarray(keys_buffer, dtype=np.int64),
        np.asarray(values_buffer, dtype=np.float64),
    )
    keys_buffer.clear()
    values_buffer.clear()
    fresh = engine.reported_keys - known
    known |= fresh
    yield engine.items_processed, fresh


def detect_chunk_stream(
    engine: BatchQuantileFilter,
    chunks: Iterable[Tuple[np.ndarray, np.ndarray]],
) -> Iterator[Tuple[int, set]]:
    """Feed an iterable of ``(keys, values)`` ndarray chunks natively.

    The array twin of :func:`batch_detect_stream` for sources that
    already produce arrays — :meth:`~repro.streams.model.Trace.
    iter_chunks`, a capture ring, a decoded wire batch — so no per-item
    Python tuples are ever built.  Yields ``(items_processed_so_far,
    newly_reported_keys)`` after each chunk::

        for done, fresh in detect_chunk_stream(engine,
                                               trace.iter_chunks(8192)):
            alert(fresh)
    """
    known: set = set(engine.reported_keys)
    for keys, values in chunks:
        engine.process(
            np.asarray(keys, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )
        fresh = engine.reported_keys - known
        known |= fresh
        yield engine.items_processed, fresh


def replay(detector: Detector, trace: Trace) -> Detector:
    """Run a whole trace through a detector; returns it for chaining."""
    process = detector.process
    for key, value in trace.items():
        process(key, value)
    return detector


def interleave_traces(traces: Sequence[Trace], seed: int = 0) -> Trace:
    """Mix several traces into one by a seeded random interleaving.

    Relative item order *within* each source trace is preserved (each
    source is a FIFO); the merge order across sources is a deterministic
    shuffle weighted by the traces' lengths.  Key spaces are kept
    disjoint by offsetting each trace's keys by the running maximum, so
    monitors see distinct populations per source.
    """
    if not traces:
        raise ParameterError("need at least one trace to interleave")
    rng = np_rng(seed, "interleave")
    source_of = np.repeat(
        np.arange(len(traces)), [len(t) for t in traces]
    )
    rng.shuffle(source_of)

    offsets = []
    running = 0
    for trace in traces:
        offsets.append(running)
        running += int(trace.keys.max()) + 1 if len(trace) else 0

    cursors = [0] * len(traces)
    keys = np.empty(source_of.size, dtype=np.int64)
    values = np.empty(source_of.size, dtype=np.float64)
    for position, source in enumerate(source_of.tolist()):
        cursor = cursors[source]
        keys[position] = traces[source].keys[cursor] + offsets[source]
        values[position] = traces[source].values[cursor]
        cursors[source] = cursor + 1
    return Trace(
        keys=keys,
        values=values,
        name="interleaved(" + ", ".join(t.name for t in traces) + ")",
        metadata={
            "generator": "interleave",
            "sources": [t.name for t in traces],
            "key_offsets": offsets,
            "seed": seed,
        },
    )
