"""The paper's synthetic Zipf dataset, implemented to its stated recipe.

Section V-A: "item occurrence frequencies following Zipf's law with
parameter alpha.  Each value is derived by summing two components: one
that adheres to a fixed-parameter Zipf distribution, and another that is
constant given a key and varies with the key according to a normal
distribution with fixed mean and standard deviation."

Adjusting ``alpha`` varies how concentrated the stream is on its heavy
keys (the paper builds 4.2M-key and 120K-key variants this way); the
per-key normal offset is what makes *specific keys* consistently exceed
the threshold — the true outstanding keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.streams.model import Trace


@dataclass(frozen=True)
class ZipfConfig:
    """Parameters of the synthetic Zipf workload.

    Attributes
    ----------
    num_items:
        Stream length.
    num_keys:
        Key universe size (ranks 0..num_keys-1).
    alpha:
        Zipf exponent of the key-frequency distribution (> 0); larger
        means fewer keys dominate.
    value_alpha:
        Zipf exponent of the per-item value component (> 1 so numpy's
        sampler applies); its samples are scaled by ``value_scale``.
    value_scale:
        Multiplier of the Zipf value component (units: ms, to mirror the
        paper's T = 300 ms default).
    offset_mean, offset_std:
        The per-key normal offset's parameters.
    seed:
        Master seed; every derived stream is deterministic in it.
    """

    num_items: int = 100_000
    num_keys: int = 10_000
    alpha: float = 1.1
    value_alpha: float = 2.0
    value_scale: float = 30.0
    offset_mean: float = 120.0
    offset_std: float = 80.0
    seed: int = 0

    def __post_init__(self):
        if self.num_items < 1:
            raise ParameterError(f"num_items must be >= 1, got {self.num_items}")
        if self.num_keys < 1:
            raise ParameterError(f"num_keys must be >= 1, got {self.num_keys}")
        if self.alpha <= 0:
            raise ParameterError(f"alpha must be > 0, got {self.alpha}")
        if self.value_alpha <= 1:
            raise ParameterError(
                f"value_alpha must be > 1 for the Zipf sampler, got {self.value_alpha}"
            )


def sample_zipf_keys(
    num_items: int, num_keys: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``num_items`` keys with rank frequencies ``~ 1/rank^alpha``.

    Inverse-CDF sampling over the finite universe: exact Zipf over
    ``num_keys`` ranks (numpy's ``zipf`` is unbounded, which would leak
    mass outside the universe).  Key ids are shuffled ranks so key id
    carries no frequency information.
    """
    ranks = np.arange(1, num_keys + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(num_items)
    rank_indices = np.searchsorted(cdf, draws, side="left")
    # Rank -> shuffled key id, so heavy keys are spread over the id space.
    permutation = rng.permutation(num_keys)
    return permutation[rank_indices].astype(np.int64)


def generate_zipf_trace(config: ZipfConfig = ZipfConfig()) -> Trace:
    """Generate the paper-recipe Zipf trace."""
    rng = np_rng(config.seed, "zipf-trace")
    keys = sample_zipf_keys(config.num_items, config.num_keys, config.alpha, rng)

    # Per-item Zipf component (heavy-tailed, same law for every item).
    zipf_component = rng.zipf(config.value_alpha, size=config.num_items)
    zipf_component = zipf_component.astype(np.float64) * config.value_scale

    # Per-key constant component, normal across keys.
    key_offsets = rng.normal(
        config.offset_mean, config.offset_std, size=config.num_keys
    )
    values = zipf_component + key_offsets[keys]

    return Trace(
        keys=keys,
        values=values,
        name=f"zipf(alpha={config.alpha}, keys={config.num_keys})",
        metadata={
            "generator": "zipf",
            "num_items": config.num_items,
            "num_keys": config.num_keys,
            "alpha": config.alpha,
            "value_alpha": config.value_alpha,
            "value_scale": config.value_scale,
            "offset_mean": config.offset_mean,
            "offset_std": config.offset_std,
            "seed": config.seed,
        },
    )
