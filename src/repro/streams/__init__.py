"""Key-value stream workloads.

The paper evaluates on a CAIDA internet trace, a Yahoo cloud-flow trace
and a synthetic Zipf dataset.  The real traces are proprietary, so this
package generates synthetic equivalents that match the statistics the
detection task is sensitive to: key-frequency skew, the distinct-key to
stream-length ratio, and the fraction/placement of values above the
threshold (see DESIGN.md's substitution table).
"""

from repro.streams.model import Trace, threshold_for_fraction
from repro.streams.zipf import ZipfConfig, generate_zipf_trace
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace
from repro.streams.cloud_like import CloudLikeConfig, generate_cloud_like_trace
from repro.streams.drift import DriftConfig, generate_drift_trace
from repro.streams.bursty import BurstyConfig, generate_bursty_trace
from repro.streams.trace_io import save_trace, load_trace
from repro.streams.live import (
    batch_detect_stream,
    detect_chunk_stream,
    detect_stream,
    interleave_traces,
    replay,
)

__all__ = [
    "Trace",
    "threshold_for_fraction",
    "ZipfConfig",
    "generate_zipf_trace",
    "CaidaLikeConfig",
    "generate_caida_like_trace",
    "CloudLikeConfig",
    "generate_cloud_like_trace",
    "DriftConfig",
    "generate_drift_trace",
    "BurstyConfig",
    "generate_bursty_trace",
    "save_trace",
    "load_trace",
    "detect_stream",
    "batch_detect_stream",
    "detect_chunk_stream",
    "replay",
    "interleave_traces",
]
