"""Bursty / adversarial workload: anomalies arrive in concentrated waves.

The drift workload changes *which* keys are anomalous; this one changes
*when* anomalies happen.  Traffic is a stationary Zipf background, but
the stream is punctuated by burst windows during which a small rotating
key set floods in with values far above the threshold, then goes quiet
again.  This is the adversarial shape for a reset-based structure: a
burst must be caught while it lasts (its keys' Qweight accrues only
inside the window), and the quiet periods between bursts are where a
sketch's stale state would keep alarming.

The trace's metadata records each burst window ``(start, end)`` and its
key set, so experiments can score per-burst detection latency and
post-burst false alarms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.streams.model import Trace
from repro.streams.zipf import sample_zipf_keys


@dataclass(frozen=True)
class BurstyConfig:
    """Parameters of the bursty workload.

    Attributes
    ----------
    num_items, num_keys, alpha:
        Background traffic, as in the CAIDA-like generator.
    num_bursts:
        How many burst windows the stream contains (evenly spaced).
    burst_length:
        Items per burst window.
    burst_keys:
        Size of each burst's anomalous key set (fresh draw per burst).
    burst_share:
        Fraction of in-window items hijacked by the burst key set; the
        rest stay background traffic, so a burst never fully masks the
        baseline (1.0 = the adversarial extreme).
    base_value, value_sigma:
        Background value model ``base * lognormal(sigma)``.
    burst_boost:
        Multiplier on ``base_value`` for burst-key items inside their
        window — size it so boosted values clear the threshold.
    seed:
        Master seed; keys, values and burst membership all derive from it.
    """

    num_items: int = 60_000
    num_keys: int = 1_000
    alpha: float = 1.05
    num_bursts: int = 4
    burst_length: int = 5_000
    burst_keys: int = 12
    burst_share: float = 0.7
    base_value: float = 120.0
    value_sigma: float = 0.6
    burst_boost: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.num_bursts < 1:
            raise ParameterError(
                f"num_bursts must be >= 1, got {self.num_bursts}"
            )
        if self.num_bursts * self.burst_length > self.num_items:
            raise ParameterError(
                "burst windows exceed the stream: num_bursts * burst_length "
                f"= {self.num_bursts * self.burst_length} > {self.num_items}"
            )
        if not 0.0 < self.burst_share <= 1.0:
            raise ParameterError(
                f"burst_share must be in (0, 1], got {self.burst_share}"
            )
        if self.burst_keys < 1 or self.burst_keys > self.num_keys:
            raise ParameterError(
                f"burst_keys must be in [1, num_keys], got {self.burst_keys}"
            )


def burst_windows(config: BurstyConfig):
    """``(start, end)`` item index of each burst, evenly spaced.

    Bursts are centred in ``num_bursts`` equal stream segments, so
    every burst is surrounded by quiet traffic on both sides.

    >>> burst_windows(BurstyConfig(num_items=100, num_bursts=2,
    ...                            burst_length=10))
    [(20, 30), (70, 80)]
    """
    segment = config.num_items // config.num_bursts
    windows = []
    for burst in range(config.num_bursts):
        start = burst * segment + (segment - config.burst_length) // 2
        windows.append((start, start + config.burst_length))
    return windows


def generate_bursty_trace(config: BurstyConfig = BurstyConfig()) -> Trace:
    """Generate the burst-punctuated trace."""
    rng = np_rng(config.seed, "bursty-trace")
    keys = sample_zipf_keys(config.num_items, config.num_keys, config.alpha, rng)
    values = config.base_value * rng.lognormal(
        mean=0.0, sigma=config.value_sigma, size=config.num_items
    )

    windows = burst_windows(config)
    burst_sets = []
    for start, end in windows:
        burst_set = rng.choice(
            config.num_keys, size=config.burst_keys, replace=False
        ).astype(np.int64)
        burst_sets.append({int(k) for k in burst_set})
        window = slice(start, end)
        length = end - start
        hijacked = rng.random(length) < config.burst_share
        count = int(np.count_nonzero(hijacked))
        burst_keys = rng.choice(burst_set, size=count, replace=True)
        keys[window][hijacked] = burst_keys
        boosted = config.base_value * config.burst_boost * rng.lognormal(
            mean=0.0, sigma=config.value_sigma, size=count
        )
        values[window][hijacked] = boosted

    return Trace(
        keys=keys,
        values=values,
        name="bursty",
        metadata={
            "generator": "bursty",
            "num_keys": config.num_keys,
            "burst_windows": windows,
            "burst_key_sets": [sorted(s) for s in burst_sets],
            "burst_boost": config.burst_boost,
            "base_value": config.base_value,
            "seed": config.seed,
        },
    )
