"""Trace persistence: compressed npz (native) and CSV (interchange).

Generating a multi-hundred-thousand-item trace takes a moment, and many
experiments sweep parameters over the *same* trace; saving it once keeps
sweeps fast and guarantees every configuration sees identical items.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.common.errors import TraceFormatError
from repro.streams.model import Trace

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: PathLike) -> None:
    """Save a trace as compressed ``.npz`` (keys, values, metadata)."""
    path = Path(path)
    np.savez_compressed(
        path,
        keys=trace.keys,
        values=trace.values,
        meta=np.frombuffer(
            json.dumps(
                {
                    "version": _FORMAT_VERSION,
                    "name": trace.name,
                    "metadata": trace.metadata,
                }
            ).encode("utf-8"),
            dtype=np.uint8,
        ),
    )


def load_trace(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            keys = archive["keys"]
            values = archive["values"]
            meta_bytes = archive["meta"].tobytes()
    except (KeyError, OSError, ValueError) as exc:
        raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"corrupt metadata in {path}: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {meta.get('version')!r} in {path}"
        )
    return Trace(
        keys=keys,
        values=values,
        name=meta.get("name", path.stem),
        metadata=meta.get("metadata", {}),
    )


def export_csv(trace: Trace, path: PathLike) -> None:
    """Export a trace as a two-column ``key,value`` CSV with a header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["key", "value"])
        for key, value in trace.items():
            writer.writerow([key, repr(value)])


def import_csv(path: PathLike, name: str = "") -> Trace:
    """Load a ``key,value`` CSV written by :func:`export_csv`."""
    path = Path(path)
    keys = []
    values = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["key", "value"]:
            raise TraceFormatError(
                f"{path} is not a trace CSV (expected 'key,value' header, "
                f"got {header!r})"
            )
        for line_number, row in enumerate(reader, start=2):
            try:
                keys.append(int(row[0]))
                values.append(float(row[1]))
            except (IndexError, ValueError) as exc:
                raise TraceFormatError(
                    f"{path}:{line_number}: malformed row {row!r}"
                ) from exc
    return Trace(
        keys=np.asarray(keys, dtype=np.int64),
        values=np.asarray(values, dtype=np.float64),
        name=name or path.stem,
        metadata={"source": str(path)},
    )
