"""Concept-drift workload: the anomalous key set changes over time.

The paper's reset discussion (Sec. III-B) argues periodic clearing
keeps the structure focused on recent behaviour; this generator creates
the workload where that matters.  The stream is divided into equal
*phases*; in each phase a different subset of keys is anomalous
(latency baseline boosted).  A monitor must both catch each phase's new
anomalies quickly and stop alarming on keys that recovered — the stale
Qweight a recovered key carries across a phase boundary is exactly what
windowing limits.

The trace's metadata records the phase boundaries and each phase's
anomalous key set, so experiments can score detections per phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import numpy as np

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.streams.model import Trace
from repro.streams.zipf import sample_zipf_keys


@dataclass(frozen=True)
class DriftConfig:
    """Parameters of the drifting workload.

    Attributes
    ----------
    num_items, num_keys, alpha:
        As in the CAIDA-like generator.
    num_phases:
        How many equal-length phases the stream divides into.
    anomalous_per_phase:
        Size of each phase's anomalous key set.
    carry_over:
        How many of a phase's anomalous keys stay anomalous into the
        next phase (0 = full churn each phase).
    base_value, value_sigma, anomaly_boost:
        Value model: ``base * lognormal(sigma)``, boosted for the
        phase's anomalous keys.
    anomalous_min_phase_frequency:
        Anomalous keys are drawn from keys expected to appear at least
        this often *per phase*, so each phase's anomalies are actually
        detectable under a non-zero epsilon (cf. Definition 4's
        deliberate blindness to infrequent keys).
    """

    num_items: int = 60_000
    num_keys: int = 1_000
    alpha: float = 1.05
    num_phases: int = 3
    anomalous_per_phase: int = 20
    carry_over: int = 0
    base_value: float = 60.0
    value_sigma: float = 0.7
    anomaly_boost: float = 10.0
    anomalous_min_phase_frequency: int = 30
    seed: int = 0

    def __post_init__(self):
        if self.num_items < self.num_phases:
            raise ParameterError("num_items must be >= num_phases")
        if self.num_phases < 1:
            raise ParameterError(f"num_phases must be >= 1, got {self.num_phases}")
        if not 0 <= self.carry_over <= self.anomalous_per_phase:
            raise ParameterError(
                "carry_over must be in [0, anomalous_per_phase]"
            )
        if self.anomalous_per_phase > self.num_keys:
            raise ParameterError(
                "anomalous_per_phase cannot exceed num_keys"
            )


def exceedance_fraction(values, threshold: float) -> float:
    """Fraction of ``values`` strictly above ``threshold``.

    The scalar statistic behind drift detection: under stationary
    traffic the fraction of items exceeding the criteria threshold
    ``T`` is roughly constant, so a sustained shift in this fraction is
    the cheapest observable symptom of concept drift (the workload this
    module generates).

    >>> exceedance_fraction([1.0, 5.0, 9.0, 20.0], threshold=8.0)
    0.5
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr > threshold)) / arr.size


def windowed_exceedance_fractions(
    values, threshold: float, window_items: int
) -> np.ndarray:
    """:func:`exceedance_fraction` per consecutive full window.

    Splits ``values`` into ``len(values) // window_items`` complete
    windows (a trailing partial window is ignored) and returns one
    fraction per window — the sequence a drift monitor watches.

    >>> windowed_exceedance_fractions(
    ...     [0.0, 9.0, 9.0, 9.0, 0.0, 0.0], threshold=5.0, window_items=2
    ... ).tolist()
    [0.5, 1.0, 0.0]
    """
    if window_items < 1:
        raise ParameterError(
            f"window_items must be >= 1, got {window_items}"
        )
    arr = np.asarray(values, dtype=np.float64)
    num_windows = arr.size // window_items
    if num_windows == 0:
        return np.empty(0, dtype=np.float64)
    trimmed = arr[: num_windows * window_items]
    above = (trimmed > threshold).reshape(num_windows, window_items)
    return above.mean(axis=1)


def generate_drift_trace(config: DriftConfig = DriftConfig()) -> Trace:
    """Generate the phase-drifting trace."""
    rng = np_rng(config.seed, "drift-trace")
    keys = sample_zipf_keys(config.num_items, config.num_keys, config.alpha, rng)

    # Eligible anomaly hosts: keys frequent enough to be detectable
    # within a single phase.
    counts = np.bincount(keys, minlength=config.num_keys)
    eligible = np.flatnonzero(
        counts >= config.anomalous_min_phase_frequency * config.num_phases
    )
    if eligible.size < config.anomalous_per_phase:
        eligible = np.argsort(counts)[::-1][: config.anomalous_per_phase * 2]

    phase_sets: List[Set[int]] = []
    current: Set[int] = set()
    for _ in range(config.num_phases):
        carried = set(
            rng.choice(sorted(current), size=config.carry_over, replace=False)
            .tolist()
        ) if current and config.carry_over else set()
        fresh_pool = np.array(sorted(set(eligible.tolist()) - carried - current))
        fresh = rng.choice(
            fresh_pool,
            size=min(config.anomalous_per_phase - len(carried),
                     fresh_pool.size),
            replace=False,
        )
        current = carried | {int(k) for k in fresh}
        phase_sets.append(set(current))

    # Assign each item its phase, then its value.
    phase_length = config.num_items // config.num_phases
    item_phase = np.minimum(
        np.arange(config.num_items) // phase_length, config.num_phases - 1
    )
    anomalous_matrix = np.zeros(
        (config.num_phases, config.num_keys), dtype=bool
    )
    for phase, members in enumerate(phase_sets):
        anomalous_matrix[phase, sorted(members)] = True
    boosted = anomalous_matrix[item_phase, keys]
    noise = rng.lognormal(0.0, config.value_sigma, size=config.num_items)
    values = config.base_value * noise * np.where(
        boosted, config.anomaly_boost, 1.0
    )

    boundaries = [phase * phase_length for phase in range(config.num_phases)]
    return Trace(
        keys=keys,
        values=values,
        name=f"drift({config.num_phases} phases)",
        metadata={
            "generator": "drift",
            "num_items": config.num_items,
            "num_keys": config.num_keys,
            "num_phases": config.num_phases,
            "phase_boundaries": boundaries,
            "phase_anomalous_keys": [sorted(s) for s in phase_sets],
            "seed": config.seed,
        },
    )
