"""The stream model: a finite trace of ``<key, value>`` items.

Definition 1's stream is represented as two parallel numpy arrays (int64
keys, float64 values) — compact enough for multi-million-item traces and
directly consumable by the batch engine, while :meth:`Trace.items`
yields plain Python pairs for the scalar detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.common.errors import ParameterError


@dataclass
class Trace:
    """A finite key-value stream plus its provenance metadata."""

    keys: np.ndarray
    values: np.ndarray
    name: str = "trace"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.keys = np.asarray(self.keys, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.keys.shape != self.values.shape or self.keys.ndim != 1:
            raise ParameterError(
                f"keys and values must be equal-length 1-D arrays, got "
                f"{self.keys.shape} and {self.values.shape}"
            )

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def items(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(key, value)`` pairs as plain Python scalars."""
        for key, value in zip(self.keys.tolist(), self.values.tolist()):
            yield key, value

    def iter_chunks(
        self, chunk_items: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(keys, values)`` ndarray pairs of ``chunk_items`` items.

        Chunks are zero-copy views into the trace arrays (the final
        chunk may be shorter), so batch consumers — the vectorised
        engine, the parallel pipeline feed — never materialise per-item
        tuples.  Callers that mutate or retain chunks across trace
        mutations should copy.
        """
        if chunk_items < 1:
            raise ParameterError(
                f"chunk_items must be >= 1, got {chunk_items}"
            )
        for start in range(0, len(self), chunk_items):
            yield (
                self.keys[start:start + chunk_items],
                self.values[start:start + chunk_items],
            )

    @property
    def distinct_keys(self) -> int:
        """Number of distinct keys in the trace."""
        return int(np.unique(self.keys).size)

    def anomaly_fraction(self, threshold: float) -> float:
        """Fraction of items whose value exceeds ``threshold``."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.values > threshold))

    def head(self, n: int) -> "Trace":
        """A prefix sub-trace of the first ``n`` items."""
        if n < 0:
            raise ParameterError(f"prefix length must be >= 0, got {n}")
        return Trace(
            keys=self.keys[:n].copy(),
            values=self.values[:n].copy(),
            name=f"{self.name}[:{n}]",
            metadata=dict(self.metadata),
        )

    def key_frequency(self) -> Dict[int, int]:
        """Frequency of every distinct key (for workload diagnostics)."""
        unique, counts = np.unique(self.keys, return_counts=True)
        return dict(zip(unique.tolist(), counts.tolist()))


def threshold_for_fraction(values: np.ndarray, fraction: float) -> float:
    """Threshold T putting ~``fraction`` of ``values`` above it.

    The paper adjusts T per dataset "to ensure the proportion of
    abnormal items is around 5 %"; this helper does that calibration.
    """
    if not 0.0 < fraction < 1.0:
        raise ParameterError(f"fraction must be in (0, 1), got {fraction}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ParameterError("cannot calibrate a threshold on an empty value array")
    return float(np.quantile(values, 1.0 - fraction))
