"""CAIDA-like internet trace generator.

The paper's Internet dataset (CAIDA 2018, anonymised backbone traffic)
has 26.1M items over ~0.64M distinct five-tuple flows — about 40 items
per flow on average with heavy Zipfian skew — and uses packet
inter-arrival times as values, with T = 300 ms putting ~7.6 % of items
above the threshold.

The generator reproduces those statistics: Zipfian flow sizes, log-normal
per-item latencies around a per-flow baseline, and a tail of anomalous
flows whose baselines sit near/above the threshold.  Flow keys can be
materialised as packed five-tuple integers; detection only consumes the
integer key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.streams.model import Trace
from repro.streams.zipf import sample_zipf_keys

#: Default threshold matching the paper's Internet setting (milliseconds).
DEFAULT_INTERNET_THRESHOLD_MS = 300.0


@dataclass(frozen=True)
class CaidaLikeConfig:
    """Parameters of the CAIDA-like workload.

    Attributes
    ----------
    num_items, num_keys:
        Stream length and flow universe (paper ratio ~40 items/flow).
    alpha:
        Zipf exponent of flow sizes.
    base_latency_ms:
        Median per-item latency of a normal flow.
    latency_sigma:
        Log-normal shape of per-item latency noise.
    anomalous_key_fraction:
        Fraction of flows whose latency baseline is inflated — the
        flows the detector should catch.
    anomaly_boost:
        Multiplier applied to anomalous flows' baselines.
    anomalous_min_frequency:
        Anomalous flows are drawn from flows with at least this many
        items.  A flow needs recurrence to be detectable at all under a
        non-zero epsilon (Definition 4 deliberately ignores infrequent
        keys), so concentrating the injected anomalies on recurring
        flows yields a stable, non-trivial ground-truth set at any
        trace scale.
    """

    num_items: int = 200_000
    num_keys: int = 5_000
    alpha: float = 1.05
    base_latency_ms: float = 60.0
    latency_sigma: float = 0.9
    anomalous_key_fraction: float = 0.06
    anomaly_boost: float = 7.0
    anomalous_min_frequency: int = 40
    anomalous_max_frequency: int = 400
    seed: int = 0

    def __post_init__(self):
        if self.num_items < 1 or self.num_keys < 1:
            raise ParameterError("num_items and num_keys must be >= 1")
        if not 0.0 <= self.anomalous_key_fraction <= 1.0:
            raise ParameterError(
                "anomalous_key_fraction must be in [0, 1], got "
                f"{self.anomalous_key_fraction}"
            )
        if self.anomaly_boost < 1.0:
            raise ParameterError(
                f"anomaly_boost must be >= 1, got {self.anomaly_boost}"
            )


def generate_caida_like_trace(config: CaidaLikeConfig = CaidaLikeConfig()) -> Trace:
    """Generate the CAIDA-like internet latency trace."""
    rng = np_rng(config.seed, "caida-like")
    keys = sample_zipf_keys(config.num_items, config.num_keys, config.alpha, rng)

    # Per-flow latency baseline: log-normal spread around the median,
    # boosted for the anomalous subset.
    baselines = config.base_latency_ms * rng.lognormal(
        0.0, 0.4, size=config.num_keys
    )
    num_anomalous = int(round(config.anomalous_key_fraction * config.num_keys))
    anomalous = _choose_anomalous_keys(
        keys,
        config.num_keys,
        num_anomalous,
        config.anomalous_min_frequency,
        config.anomalous_max_frequency,
        rng,
    )
    num_anomalous = anomalous.size
    baselines[anomalous] *= config.anomaly_boost

    # Per-item latency: flow baseline x log-normal noise.
    noise = rng.lognormal(0.0, config.latency_sigma, size=config.num_items)
    values = baselines[keys] * noise

    return Trace(
        keys=keys,
        values=values,
        name=f"caida-like(keys={config.num_keys})",
        metadata={
            "generator": "caida_like",
            "num_items": config.num_items,
            "num_keys": config.num_keys,
            "alpha": config.alpha,
            "anomalous_keys": int(num_anomalous),
            "default_threshold_ms": DEFAULT_INTERNET_THRESHOLD_MS,
            "seed": config.seed,
        },
    )


def _choose_anomalous_keys(
    keys: np.ndarray,
    num_keys: int,
    num_anomalous: int,
    min_frequency: int,
    max_frequency: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pick anomalous key ids among mid-frequency recurring keys.

    Keys below ``min_frequency`` would be undetectable under a non-zero
    epsilon; keys above ``max_frequency`` would carry so many items that
    the abnormal-item share balloons past the paper's ~5-8 %.  Falls
    back to the most frequent keys when the band is too thin (tiny
    traces).
    """
    if num_anomalous <= 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(keys, minlength=num_keys)
    eligible = np.flatnonzero((counts >= min_frequency) & (counts <= max_frequency))
    if eligible.size < num_anomalous:
        eligible = np.argsort(counts)[::-1][: max(num_anomalous, 1)]
    size = min(num_anomalous, eligible.size)
    return rng.choice(eligible, size=size, replace=False).astype(np.int64)


def pack_five_tuple(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int, protocol: int
) -> int:
    """Pack a five-tuple into one 64-bit-ish integer flow key.

    Mirrors how trace processors flatten CAIDA's five-tuple keys; the
    full 104-bit tuple is XOR-folded, which is collision-safe enough for
    the universe sizes used here and keeps keys as plain ints.
    """
    head = (src_ip & 0xFFFFFFFF) << 32 | (dst_ip & 0xFFFFFFFF)
    tail = (src_port & 0xFFFF) << 24 | (dst_port & 0xFFFF) << 8 | (protocol & 0xFF)
    return head ^ (tail << 13)
