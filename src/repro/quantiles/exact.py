"""Exact quantile computation from a sorted buffer.

This is the zero-error comparator (Sec. II-B "exact quantile calculation
algorithms") and the reference oracle the tests validate the approximate
sketches against.  Memory grows linearly with the number of values, which
is exactly the cost the approximate structures exist to avoid.
"""

from __future__ import annotations

import bisect
from typing import List

from repro.quantiles.base import NEG_INF, QuantileSketch, paper_quantile_index


class ExactQuantile(QuantileSketch):
    """Keep every value in sorted order; answer quantiles exactly."""

    def __init__(self):
        self._values: List[float] = []

    def insert(self, value: float) -> None:
        """Insert one value, keeping the buffer sorted (O(n) worst case)."""
        bisect.insort(self._values, value)

    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Exact value at the paper's ``(epsilon, delta)`` index."""
        index = paper_quantile_index(len(self._values), delta, epsilon)
        if index is None:
            return NEG_INF
        return self._values[index]

    def rank(self, value: float) -> int:
        """Number of stored values <= ``value``."""
        return bisect.bisect_right(self._values, value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: 8 per stored value."""
        return 8 * len(self._values)

    def clear(self) -> None:
        self._values.clear()

    def values(self) -> List[float]:
        """Copy of the sorted values (for tests and debugging)."""
        return list(self._values)
