"""DDSketch (Masson, Rim & Lee, VLDB 2019) with bucket collapsing.

DDSketch guarantees *relative* value error ``alpha``: every positive
value ``v`` lands in the log-bucket ``ceil(log_gamma(v))`` with
``gamma = (1 + alpha) / (1 - alpha)``, so any value reported for a rank
is within a factor ``(1 +/- alpha)`` of the true one.  When the bucket
count exceeds ``max_buckets`` the lowest buckets collapse together,
preserving the guarantee for upper quantiles (the tail-latency case the
paper's applications care about).

Zero and negative values go to dedicated side stores, as in the
reference implementation.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF, QuantileSketch, paper_quantile_index


class DDSketch(QuantileSketch):
    """Relative-error quantile sketch over log-spaced buckets.

    Parameters
    ----------
    alpha:
        Relative accuracy in (0, 1); e.g. 0.01 means reported quantile
        values are within 1 % of the true value.
    max_buckets:
        Cap on stored buckets per sign; the lowest positive buckets
        collapse when exceeded.
    """

    def __init__(self, alpha: float = 0.01, max_buckets: int = 2048):
        if not 0.0 < alpha < 1.0:
            raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
        if max_buckets < 2:
            raise ParameterError(f"max_buckets must be >= 2, got {max_buckets}")
        self.alpha = alpha
        self.max_buckets = max_buckets
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._min_pos_key: int = 0  # collapse floor; 0 = no collapse yet

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma))

    def insert(self, value: float) -> None:
        """Add one value to the appropriate sign store / bucket."""
        self._count += 1
        if value > 0:
            idx = self._bucket_index(value)
            if self._min_pos_key and idx < self._min_pos_key:
                idx = self._min_pos_key
            self._pos[idx] = self._pos.get(idx, 0) + 1
            if len(self._pos) > self.max_buckets:
                self._collapse_lowest()
        elif value < 0:
            idx = self._bucket_index(-value)
            self._neg[idx] = self._neg.get(idx, 0) + 1
        else:
            self._zero += 1

    def _collapse_lowest(self) -> None:
        keys = sorted(self._pos)
        lowest, second = keys[0], keys[1]
        self._pos[second] += self._pos.pop(lowest)
        self._min_pos_key = second

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Value at the target rank, within relative error ``alpha``."""
        index = paper_quantile_index(self._count, delta, epsilon)
        if index is None:
            return NEG_INF
        target = index + 1
        cumulative = 0
        # Negative buckets first (most negative value = largest |bucket|).
        for key in sorted(self._neg, reverse=True):
            cumulative += self._neg[key]
            if cumulative >= target:
                return -self._bucket_value(key)
        cumulative += self._zero
        if cumulative >= target:
            return 0.0
        for key in sorted(self._pos):
            cumulative += self._pos[key]
            if cumulative >= target:
                return self._bucket_value(key)
        # Rounding slack: return the largest representable value.
        if self._pos:
            return self._bucket_value(max(self._pos))
        if self._zero:
            return 0.0
        if self._neg:
            return -self._bucket_value(min(self._neg))
        return NEG_INF

    def _bucket_value(self, key: int) -> float:
        """Representative value of bucket ``key`` (its geometric centre)."""
        return 2.0 * (self._gamma ** key) / (self._gamma + 1.0)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        """Total stored buckets across both signs."""
        return len(self._pos) + len(self._neg)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: bucket key 4 B + count 4 B, plus zero store."""
        return 8 * (len(self._pos) + len(self._neg)) + 8

    def clear(self) -> None:
        self._pos.clear()
        self._neg.clear()
        self._zero = 0
        self._count = 0
        self._min_pos_key = 0

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "DDSketch") -> None:
        """Fold another DDSketch into this one (bucket-wise addition).

        Requires equal ``alpha`` (same bucket geometry).  The relative
        error guarantee is preserved; the collapse floor becomes the
        larger of the two, and a collapse pass restores ``max_buckets``.
        """
        if self._gamma != other._gamma:
            raise ParameterError(
                f"cannot merge DDSketches with different alpha: "
                f"{self.alpha} vs {other.alpha}"
            )
        floor = max(self._min_pos_key, other._min_pos_key)
        for key, count in other._pos.items():
            target = max(key, floor) if floor else key
            self._pos[target] = self._pos.get(target, 0) + count
        if floor:
            self._min_pos_key = floor
            for key in [k for k in self._pos if k < floor]:
                self._pos[floor] = self._pos.get(floor, 0) + self._pos.pop(key)
        for key, count in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + count
        self._zero += other._zero
        self._count += other._count
        while len(self._pos) > self.max_buckets:
            self._collapse_lowest()
