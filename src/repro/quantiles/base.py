"""Shared interface and rank conventions for single-key quantile sketches.

The paper's Definition 2/3 uses 0-indexed sorted order: the
``delta``-quantile of ``n`` values is the element at index
``floor(delta * n)`` and the ``(epsilon, delta)``-quantile is at index
``floor(delta * n - epsilon)`` (or ``-inf`` when that index is
negative).  :func:`paper_quantile_index` centralises that arithmetic so
every estimator and detector agrees on it exactly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

NEG_INF = float("-inf")

#: Tolerance for rank arithmetic at exact floating-point boundaries.
#: ``delta * n`` computed in binary can land an ulp above or below the
#: exact product (e.g. ``0.95 * 20 == 19.000000000000004``); every rank
#: comparison in the package nudges by this amount so the quantile side
#: and the Qweight side of the conversion lemma always agree.
RANK_EPS = 1e-9


def paper_quantile_index(n: int, delta: float, epsilon: float = 0.0) -> Optional[int]:
    """0-based sorted index of the ``(epsilon, delta)``-quantile.

    Returns ``None`` when the index is negative, which the paper defines
    as a quantile of ``-inf`` (the key cannot be outstanding yet).
    """
    if n <= 0:
        return None
    index = math.floor(delta * n - epsilon + RANK_EPS)
    if index < 0:
        return None
    # Guard against floating-point delta*n landing exactly on n.
    return min(index, n - 1)


class QuantileSketch(ABC):
    """Interface every single-key quantile estimator implements.

    Implementations summarise the value multiset of one key.  ``insert``
    must be O(polylog) amortised; ``quantile`` may be slower (that is the
    offline-query cost the paper criticises, and the throughput
    experiments measure it honestly).
    """

    @abstractmethod
    def insert(self, value: float) -> None:
        """Add one value to the summarised multiset."""

    @abstractmethod
    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Estimated value at the paper's ``(epsilon, delta)`` index.

        Returns ``-inf`` when the multiset is too small for that index
        to exist (matching Definition 3).
        """

    @property
    @abstractmethod
    def count(self) -> int:
        """Number of values inserted so far."""

    @property
    @abstractmethod
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes."""

    @abstractmethod
    def clear(self) -> None:
        """Forget all inserted values."""

    def is_empty(self) -> bool:
        """True when no values have been inserted."""
        return self.count == 0
