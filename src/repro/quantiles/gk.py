"""Greenwald-Khanna quantile summary (SIGMOD 2001).

GK maintains a list of tuples ``(v, g, delta)`` where ``g`` is the gap
in minimum rank to the previous tuple and ``delta`` bounds the rank
uncertainty of the tuple itself.  The invariant ``g + delta <= 2*eps*n``
guarantees any rank query is answered within ``eps * n``.

This is both a baseline in its own right (the holistic per-key approach)
and the per-heavy-key summary inside SQUAD.  The query does a linear scan
over the summary — the "binary search during querying" cost footnote 2 of
the paper attributes to GK-based solutions; the throughput experiments
charge that cost honestly.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF, QuantileSketch, paper_quantile_index


class GKSummary(QuantileSketch):
    """GK summary with additive rank error ``eps * n``.

    Parameters
    ----------
    eps:
        Rank-accuracy parameter in (0, 1); the summary holds
        O((1/eps) * log(eps * n)) tuples.
    """

    def __init__(self, eps: float = 0.01):
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        # Each tuple is (value, g, delta).
        self._tuples: List[Tuple[float, int, int]] = []
        self._count = 0
        self._since_compress = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one value (amortised O(summary size / compress period))."""
        self._count += 1
        threshold = math.floor(2 * self.eps * self._count)

        if not self._tuples or value < self._tuples[0][0]:
            self._tuples.insert(0, (value, 1, 0))
        elif value >= self._tuples[-1][0]:
            self._tuples.append((value, 1, 0))
        else:
            # Find first tuple with larger value; new tuple's uncertainty
            # inherits the insertion neighbourhood's bound.
            idx = self._find_insert_position(value)
            self._tuples.insert(idx, (value, 1, max(0, threshold - 1)))

        self._since_compress += 1
        if self._since_compress >= max(1, int(1.0 / (2 * self.eps))):
            self._compress()
            self._since_compress = 0

    def _find_insert_position(self, value: float) -> int:
        lo, hi = 0, len(self._tuples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._tuples[mid][0] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined band fits the invariant."""
        if len(self._tuples) < 3:
            return
        threshold = math.floor(2 * self.eps * self._count)
        merged: List[Tuple[float, int, int]] = [self._tuples[0]]
        for value, g, delta in self._tuples[1:-1]:
            prev_value, prev_g, prev_delta = merged[-1]
            # Try to merge the previous tuple INTO the current one
            # (standard GK merges towards the right neighbour).
            if len(merged) > 1 and prev_g + g + delta <= threshold:
                merged[-1] = (value, prev_g + g, delta)
            else:
                merged.append((value, g, delta))
        merged.append(self._tuples[-1])
        self._tuples = merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Value whose rank is within ``eps * n`` of the target index."""
        index = paper_quantile_index(self._count, delta, epsilon)
        if index is None:
            return NEG_INF
        target_rank = index + 1  # ranks are 1-based inside the summary
        bound = self.eps * self._count
        min_rank = 0
        for value, g, tuple_delta in self._tuples:
            min_rank += g
            max_rank = min_rank + tuple_delta
            if target_rank - min_rank <= bound and max_rank - target_rank <= bound:
                return value
        return self._tuples[-1][0] if self._tuples else NEG_INF

    def rank_bounds(self, value: float) -> Tuple[int, int]:
        """(min rank, max rank) of ``value`` implied by the summary."""
        min_rank = 0
        max_rank = 0
        for v, g, tuple_delta in self._tuples:
            if v > value:
                break
            min_rank += g
            max_rank = min_rank + tuple_delta
        return min_rank, max_rank

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def tuples(self) -> int:
        """Number of summary tuples currently held."""
        return len(self._tuples)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: value 8 B + g 4 B + delta 4 B per tuple."""
        return 16 * len(self._tuples)

    def clear(self) -> None:
        self._tuples.clear()
        self._count = 0
        self._since_compress = 0
