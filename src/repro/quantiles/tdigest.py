"""t-digest (Dunning & Ertl 2019), merging variant.

Centroids ``(mean, weight)`` partition the value distribution; the
``k1`` scale function caps each centroid's weight so clusters stay small
near the tails (where quantile accuracy matters most) and large in the
middle.  Incoming values buffer up and are merged into the centroid list
periodically, giving amortised O(log n)-ish inserts.

Used as an alternative per-key summary for the holistic baseline and in
cross-validation tests against the exact oracle.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF, QuantileSketch, paper_quantile_index


def _k1(q: float, compression: float) -> float:
    """The t-digest ``k1`` scale function (arcsin-based)."""
    return (compression / (2.0 * math.pi)) * math.asin(2.0 * q - 1.0)


class TDigest(QuantileSketch):
    """Merging t-digest with the ``k1`` scale function.

    Parameters
    ----------
    compression:
        The ``delta`` parameter of the paper (typically 100-500); the
        digest keeps O(compression) centroids.
    buffer_size:
        Incoming values accumulate here before each merge pass; larger
        buffers amortise merge cost better.
    """

    def __init__(self, compression: float = 100.0, buffer_size: int = 512):
        if compression < 10:
            raise ParameterError(f"compression must be >= 10, got {compression}")
        if buffer_size < 1:
            raise ParameterError(f"buffer_size must be >= 1, got {buffer_size}")
        self.compression = float(compression)
        self.buffer_size = buffer_size
        self._centroids: List[Tuple[float, float]] = []  # (mean, weight), sorted
        self._buffer: List[float] = []
        self._count = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Buffer one value; merge when the buffer fills."""
        self._buffer.append(value)
        self._count += 1
        if len(self._buffer) >= self.buffer_size:
            self._merge_buffer()

    def _merge_buffer(self) -> None:
        if not self._buffer:
            return
        incoming = [(v, 1.0) for v in self._buffer]
        self._buffer.clear()
        self._centroids = self._recluster(
            sorted(self._centroids + incoming, key=lambda c: c[0])
        )

    def _recluster(
        self, merged_input: List[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        """One merge pass over a sorted ``(mean, weight)`` list under the
        k1 scale function — used by both buffer flushes and merges."""
        if not merged_input:
            return []
        total = sum(w for _, w in merged_input)
        result: List[Tuple[float, float]] = []
        cur_mean, cur_weight = merged_input[0]
        weight_so_far = 0.0
        k_lower = _k1(0.0, self.compression)
        for mean, weight in merged_input[1:]:
            q_candidate = (weight_so_far + cur_weight + weight) / total
            if _k1(q_candidate, self.compression) - k_lower <= 1.0:
                # Merge into the current centroid (weighted mean update).
                new_weight = cur_weight + weight
                cur_mean += (mean - cur_mean) * weight / new_weight
                cur_weight = new_weight
            else:
                result.append((cur_mean, cur_weight))
                weight_so_far += cur_weight
                k_lower = _k1(weight_so_far / total, self.compression)
                cur_mean, cur_weight = mean, weight
        result.append((cur_mean, cur_weight))
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Interpolated value at the paper's ``(epsilon, delta)`` index."""
        index = paper_quantile_index(self._count, delta, epsilon)
        if index is None:
            return NEG_INF
        self._merge_buffer()
        if not self._centroids:
            return NEG_INF
        target = index + 0.5  # centre-of-mass rank convention
        cumulative = 0.0
        prev_mean = self._centroids[0][0]
        prev_centre = 0.0
        for mean, weight in self._centroids:
            centre = cumulative + weight / 2.0
            if centre >= target:
                if centre == prev_centre:
                    return mean
                frac = (target - prev_centre) / (centre - prev_centre)
                frac = min(max(frac, 0.0), 1.0)
                return prev_mean + frac * (mean - prev_mean)
            cumulative += weight
            prev_mean = mean
            prev_centre = centre
        return self._centroids[-1][0]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def centroid_count(self) -> int:
        """Number of centroids after flushing the buffer."""
        self._merge_buffer()
        return len(self._centroids)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: 16 per centroid + 8 per buffered value."""
        return 16 * len(self._centroids) + 8 * len(self._buffer)

    def clear(self) -> None:
        self._centroids.clear()
        self._buffer.clear()
        self._count = 0

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "TDigest") -> None:
        """Fold another t-digest into this one.

        Requires equal ``compression``.  The other digest's centroids
        and buffered values join this digest's input and one merge pass
        re-clusters under the shared k1 scale function — the textbook
        "merging digest" operation.
        """
        if self.compression != other.compression:
            raise ParameterError(
                f"cannot merge t-digests with different compression: "
                f"{self.compression} vs {other.compression}"
            )
        other._merge_buffer()
        self._merge_buffer()
        self._centroids = self._recluster(
            sorted(self._centroids + other._centroids, key=lambda c: c[0])
        )
        self._count += other._count
