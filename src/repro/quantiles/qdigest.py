"""Q-digest (Shrivastava, Buragohain, Agrawal & Suri, SenSys 2004).

The sensor-network quantile summary the paper cites among the single-key
prior art.  Values are mapped into a universe ``[0, 2^log_universe)``
and counted in nodes of an implicit complete binary tree; a node is kept
only while it is "interesting":

    ``count(node) + count(sibling) + count(parent) > n / k``

(compression invariant), which caps the digest at ``O(k log U)`` nodes
while guaranteeing rank error ``<= n * log(U) / k``.

Quantile queries walk the kept nodes in post-order of their value
ranges, accumulating counts to the target rank.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF, QuantileSketch, paper_quantile_index


class QDigest(QuantileSketch):
    """Q-digest over integers in ``[0, 2^log_universe)``.

    Parameters
    ----------
    k:
        Compression factor; larger k = more nodes = tighter ranks
        (error ``<= n * log_universe / k``).
    log_universe:
        Bits of the value universe; float inputs are clamped and
        truncated into it.
    """

    def __init__(self, k: int = 64, log_universe: int = 16):
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if not 1 <= log_universe <= 30:
            raise ParameterError(
                f"log_universe must be in [1, 30], got {log_universe}"
            )
        self.k = k
        self.log_universe = log_universe
        self._universe = 1 << log_universe
        # Node ids follow the heap convention: root 1; node v's children
        # 2v and 2v+1; leaves are ids in [U, 2U).
        self._counts: Dict[int, int] = {}
        self._count = 0
        self._since_compress = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _leaf_of(self, value: float) -> int:
        clamped = min(max(int(value), 0), self._universe - 1)
        return self._universe + clamped

    def insert(self, value: float) -> None:
        """Count one value at its leaf; compress periodically."""
        leaf = self._leaf_of(value)
        self._counts[leaf] = self._counts.get(leaf, 0) + 1
        self._count += 1
        self._since_compress += 1
        if self._since_compress >= max(16, self.k):
            self.compress()
            self._since_compress = 0

    def compress(self) -> None:
        """Merge un-interesting sibling pairs upward (the Q-digest
        compression pass), bottom level first."""
        if self._count == 0:
            return
        threshold = self._count // self.k
        for level in range(self.log_universe, 0, -1):
            level_start = 1 << level
            level_end = 1 << (level + 1)
            for node in [
                n for n in list(self._counts)
                if level_start <= n < level_end
            ]:
                count = self._counts.get(node)
                if count is None:
                    continue
                sibling = node ^ 1
                parent = node >> 1
                total = (
                    count
                    + self._counts.get(sibling, 0)
                    + self._counts.get(parent, 0)
                )
                if total <= threshold:
                    self._counts[parent] = total
                    self._counts.pop(node, None)
                    self._counts.pop(sibling, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _node_range(self, node: int) -> Tuple[int, int]:
        """Value range [lo, hi] covered by ``node``."""
        depth = node.bit_length() - 1
        span = 1 << (self.log_universe - depth)
        lo = (node - (1 << depth)) * span
        return lo, lo + span - 1

    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Value at the target rank, within ``n * logU / k`` ranks."""
        index = paper_quantile_index(self._count, delta, epsilon)
        if index is None:
            return NEG_INF
        target = index + 1
        # Sort kept nodes by (range upper bound, range size): a node's
        # count is attributed at its upper bound, smaller ranges first —
        # the standard Q-digest rank walk.
        ordered = sorted(
            self._counts.items(),
            key=lambda item: (self._node_range(item[0])[1],
                              self._node_range(item[0])[1]
                              - self._node_range(item[0])[0]),
        )
        cumulative = 0
        for node, count in ordered:
            cumulative += count
            if cumulative >= target:
                return float(self._node_range(node)[1])
        return float(self._node_range(ordered[-1][0])[1]) if ordered else NEG_INF

    def rank_error_bound(self) -> float:
        """The structural rank-error guarantee ``n * logU / k``."""
        return self._count * self.log_universe / self.k

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def node_count(self) -> int:
        """Number of tree nodes currently kept."""
        return len(self._counts)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: node id 4 B + count 4 B per kept node."""
        return 8 * len(self._counts)

    def clear(self) -> None:
        self._counts.clear()
        self._count = 0
        self._since_compress = 0
