"""KLL quantile sketch (Karnin, Lang & Liberty, FOCS 2016).

KLL keeps a hierarchy of *compactors*.  Level ``h`` holds values each
representing ``2**h`` original values.  When a level overflows it is
sorted and every other element (random offset) is promoted to the next
level, halving the stored count while keeping rank estimates unbiased.
Capacities shrink geometrically from the top level down
(``k * c**depth_below_top``), which is what gives KLL its optimal
space bound.

Queries materialise the weighted value list and scan the cumulative
weight — the "offline query" cost the paper measures for KLL-backed
baselines.
"""

from __future__ import annotations

import random
from typing import List

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF, QuantileSketch, paper_quantile_index

_CAPACITY_DECAY = 2.0 / 3.0
_MIN_CAPACITY = 2


class KLLSketch(QuantileSketch):
    """KLL sketch with top-level capacity ``k``.

    Parameters
    ----------
    k:
        Top compactor capacity; rank error is O(n / k) with high
        probability.  The sketch holds roughly ``3 * k`` values total.
    seed:
        Seeds the random compaction-offset choices.
    """

    def __init__(self, k: int = 200, seed: int = 0):
        if k < _MIN_CAPACITY:
            raise ParameterError(f"k must be >= {_MIN_CAPACITY}, got {k}")
        self.k = k
        self._rng = random.Random(seed)
        self._compactors: List[List[float]] = [[]]
        self._count = 0

    # ------------------------------------------------------------------
    # insertion and compaction
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Add one value; triggers compaction cascades as levels fill."""
        self._compactors[0].append(value)
        self._count += 1
        if len(self._compactors[0]) >= self._capacity(0):
            self._compact_cascade()

    def _capacity(self, level: int) -> int:
        depth_below_top = len(self._compactors) - level - 1
        cap = int(self.k * (_CAPACITY_DECAY ** depth_below_top)) + 1
        return max(cap, _MIN_CAPACITY)

    def _compact_cascade(self) -> None:
        level = 0
        while level < len(self._compactors):
            if len(self._compactors[level]) < self._capacity(level):
                break
            self._compact_level(level)
            level += 1

    def _compact_level(self, level: int) -> None:
        if level + 1 == len(self._compactors):
            self._compactors.append([])
        buf = self._compactors[level]
        buf.sort()
        offset = self._rng.randrange(2)
        promoted = buf[offset::2]
        self._compactors[level + 1].extend(promoted)
        self._compactors[level] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def quantile(self, delta: float, epsilon: float = 0.0) -> float:
        """Value at the weighted rank matching the paper's index."""
        index = paper_quantile_index(self._count, delta, epsilon)
        if index is None:
            return NEG_INF
        pairs = self._weighted_items()
        if not pairs:
            return NEG_INF
        target = index + 1
        cumulative = 0
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return value
        return pairs[-1][0]

    def rank(self, value: float) -> int:
        """Estimated number of inserted values <= ``value``."""
        total = 0
        for level, buf in enumerate(self._compactors):
            weight = 1 << level
            total += weight * sum(1 for v in buf if v <= value)
        return total

    def _weighted_items(self) -> List[tuple]:
        pairs = []
        for level, buf in enumerate(self._compactors):
            weight = 1 << level
            pairs.extend((v, weight) for v in buf)
        pairs.sort(key=lambda p: p[0])
        return pairs

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def levels(self) -> int:
        """Number of compactor levels currently allocated."""
        return len(self._compactors)

    @property
    def stored_items(self) -> int:
        """Number of values physically stored across all levels."""
        return sum(len(buf) for buf in self._compactors)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: 8 per stored value plus 8 per level header."""
        return 8 * self.stored_items + 8 * len(self._compactors)

    def clear(self) -> None:
        self._compactors = [[]]
        self._count = 0

    # ------------------------------------------------------------------
    # merging (distributed deployments)
    # ------------------------------------------------------------------
    def merge(self, other: "KLLSketch") -> None:
        """Fold another KLL sketch into this one.

        Standard KLL merge: concatenate compactors level by level, then
        re-run the compaction cascade wherever capacities are exceeded.
        Rank-error guarantees compose (the merged sketch behaves like
        one built over the concatenated stream).
        """
        while len(self._compactors) < len(other._compactors):
            self._compactors.append([])
        for level, buf in enumerate(other._compactors):
            self._compactors[level].extend(buf)
        self._count += other._count
        # Compact any level pushed over capacity, bottom-up.
        level = 0
        while level < len(self._compactors):
            if len(self._compactors[level]) >= self._capacity(level):
                self._compact_level(level)
            level += 1
