"""Single-key quantile estimators (the paper's "prior art" substrates).

Each estimator summarises the value multiset of *one* key and answers
rank/quantile queries.  They share the small interface defined in
:mod:`repro.quantiles.base` so the multi-key baselines (SQUAD and the
per-key holistic approach) can plug any of them in.
"""

from repro.quantiles.base import QuantileSketch, paper_quantile_index
from repro.quantiles.exact import ExactQuantile
from repro.quantiles.gk import GKSummary
from repro.quantiles.kll import KLLSketch
from repro.quantiles.tdigest import TDigest
from repro.quantiles.ddsketch import DDSketch
from repro.quantiles.qdigest import QDigest

__all__ = [
    "QuantileSketch",
    "paper_quantile_index",
    "ExactQuantile",
    "GKSummary",
    "KLLSketch",
    "TDigest",
    "DDSketch",
    "QDigest",
]
