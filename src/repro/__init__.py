"""QuantileFilter: online detection of quantile-outstanding keys.

A from-scratch Python reproduction of *"Online Detection of Outstanding
Quantiles with QuantileFilter"* (Wu et al., ICDE 2024): the
QuantileFilter sketch itself, every substrate it builds on (Count
Sketch, hashing, saturating counters), the SOTA baselines it is compared
against (SQUAD, SketchPolymer, HistSketch), single-key quantile
estimators (GK, KLL, t-digest, DDSketch), synthetic workloads matching
the paper's datasets, and the full evaluation harness (Figs. 4-15).

Quickstart::

    from repro import Criteria, QuantileFilter

    # Report any key whose 95 %-quantile value exceeds 200 ms, with a
    # rank slack of 30 items, using a 64 KB structure.
    qf = QuantileFilter(Criteria(delta=0.95, threshold=200.0, epsilon=30.0),
                        memory_bytes=64 * 1024)
    for key, value in stream:
        report = qf.insert(key, value)
        if report is not None:
            print(f"outstanding: {report.key} (Qweight {report.qweight:.0f})")
"""

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter, Report
from repro.core.naive import NaiveDualCSketch
from repro.core.vectorized import BatchQuantileFilter
from repro.core.multi_criteria import MultiCriteriaFilter
from repro.core.windowed import WindowedQuantileFilter
from repro.core.persistence import save_filter, load_filter
from repro.parallel.sharded import ShardedQuantileFilter
from repro.parallel.pipeline import ParallelPipeline
from repro.observability import (
    HealthMonitor,
    HealthServer,
    StatsRegistry,
    observe_filter,
    render_prometheus,
    serve_filter,
    serve_pipeline,
)
from repro.common.errors import ReproError, ParameterError
from repro.detection.ground_truth import GroundTruthDetector, compute_ground_truth
from repro.detection.shadow import ShadowAccuracyEstimator
from repro.detection.threshold import ThresholdControlLoop, ThresholdController
from repro.metrics.accuracy import DetectionScore, score_sets

__version__ = "1.0.0"

__all__ = [
    "Criteria",
    "QuantileFilter",
    "Report",
    "NaiveDualCSketch",
    "BatchQuantileFilter",
    "MultiCriteriaFilter",
    "WindowedQuantileFilter",
    "ShardedQuantileFilter",
    "ParallelPipeline",
    "StatsRegistry",
    "observe_filter",
    "render_prometheus",
    "HealthMonitor",
    "HealthServer",
    "serve_filter",
    "serve_pipeline",
    "ShadowAccuracyEstimator",
    "ThresholdController",
    "ThresholdControlLoop",
    "save_filter",
    "load_filter",
    "ReproError",
    "ParameterError",
    "GroundTruthDetector",
    "compute_ground_truth",
    "DetectionScore",
    "score_sets",
    "__version__",
]
