"""SketchPolymer (Guo et al., KDD 2023), reimplemented.

"Estimate per-item tail quantile using one sketch."  The design the
QuantileFilter paper characterises has two stages:

* **Stage 1 — early filter.**  Each key's first ``skip_count`` values
  are deliberately *not* recorded (the original uses this to spend
  memory only on keys that recur).  This is the "discarding the earliest
  arriving values" behaviour our paper blames for SketchPolymer's
  systematic recall error: keys whose anomaly lives in their early
  values can never be detected.
* **Stage 2 — log-bucketed value recording.**  Values are quantised to
  ``log2`` buckets and the pair ``(key, bucket)`` is counted in a shared
  Count-Min sketch.  A quantile query reconstructs the key's histogram
  by probing *every* bucket — the ``log(value range)`` counter reads of
  footnote 2 — and walks the cumulative counts.

Under tight memory, CM collisions inflate every bucket count, dragging
estimated tail quantiles up and flooding the detector with false
positives: low precision, high recall — exactly the Fig. 4/5 shape.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.common.errors import ParameterError
from repro.common.hashing import canonical_key, mix64
from repro.detection.adapters import MultiKeyQuantileEstimator
from repro.quantiles.base import NEG_INF
from repro.sketches.count_min import CountMinSketch


class SketchPolymer(MultiKeyQuantileEstimator):
    """Per-key tail quantile from one shared log-bucketed sketch.

    Parameters
    ----------
    memory_bytes:
        Total budget, split between the stage-1 frequency sketch and
        the stage-2 value sketch.
    value_min, value_max:
        The representable value range; values are clamped into it.  The
        number of log2 buckets is ``ceil(log2(value_max / value_min))``.
    skip_count:
        How many of each key's earliest values stage 1 discards.
    stage1_fraction:
        Budget share of the stage-1 frequency sketch.
    """

    def __init__(
        self,
        memory_bytes: int,
        *,
        value_min: float = 1e-3,
        value_max: float = 1e5,
        skip_count: int = 2,
        stage1_fraction: float = 0.25,
        depth: int = 3,
        seed: int = 0,
    ):
        if value_min <= 0 or value_max <= value_min:
            raise ParameterError(
                f"need 0 < value_min < value_max, got {value_min}, {value_max}"
            )
        if skip_count < 0:
            raise ParameterError(f"skip_count must be >= 0, got {skip_count}")
        if not 0.0 < stage1_fraction < 1.0:
            raise ParameterError(
                f"stage1_fraction must be in (0, 1), got {stage1_fraction}"
            )
        self.value_min = value_min
        self.value_max = value_max
        self.skip_count = skip_count
        self.num_buckets = max(
            1, int(math.ceil(math.log2(value_max / value_min)))
        )
        stage1_bytes = max(depth * 4, int(memory_bytes * stage1_fraction))
        stage2_bytes = max(depth * 4, memory_bytes - stage1_bytes)
        self.stage1 = CountMinSketch(
            depth=depth,
            width=max(1, stage1_bytes // (depth * 4)),
            counter_kind="int32",
            seed=seed,
        )
        self.stage2 = CountMinSketch(
            depth=depth,
            width=max(1, stage2_bytes // (depth * 4)),
            counter_kind="int32",
            seed=seed + 101,
        )
        self._log2_value_min = math.log2(value_min)

    # ------------------------------------------------------------------
    # value quantisation
    # ------------------------------------------------------------------
    def bucket_of(self, value: float) -> int:
        """Log2 bucket index of ``value`` within [0, num_buckets)."""
        value = min(max(value, self.value_min), self.value_max)
        bucket = int(math.log2(value) - self._log2_value_min)
        return min(max(bucket, 0), self.num_buckets - 1)

    def bucket_upper_value(self, bucket: int) -> float:
        """Largest value representable by ``bucket`` (its upper edge)."""
        return min(self.value_max, self.value_min * (2.0 ** (bucket + 1)))

    def _bucket_key(self, key_int: int, bucket: int) -> int:
        return mix64(key_int ^ (bucket * 0x9E3779B97F4A7C15))

    # ------------------------------------------------------------------
    # MultiKeyQuantileEstimator interface
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: float) -> None:
        """Stage-1 count; record the value only past the early filter."""
        key_int = canonical_key(key)
        self.stage1.update(key_int, 1.0)
        seen = self.stage1.estimate(key_int)
        if seen <= self.skip_count:
            return  # early values are discarded (the recall-error source)
        self.stage2.update(self._bucket_key(key_int, self.bucket_of(value)), 1.0)

    def quantile(self, key: Hashable, delta: float, epsilon: float = 0.0) -> float:
        """Walk all buckets' CM counters to the target cumulative rank."""
        key_int = canonical_key(key)
        counts = [
            max(0.0, self.stage2.estimate(self._bucket_key(key_int, b)))
            for b in range(self.num_buckets)
        ]
        total = sum(counts)
        if total <= 0:
            return NEG_INF
        index = math.floor(delta * total - epsilon)
        if index < 0:
            return NEG_INF
        target = min(index + 1, total)
        cumulative = 0.0
        for bucket, count in enumerate(counts):
            cumulative += count
            if cumulative >= target:
                return self.bucket_upper_value(bucket)
        return self.bucket_upper_value(self.num_buckets - 1)

    # reset_key: inherited no-op — the shared counters cannot forget one
    # key, which is why the adapter's dedup absorbs repeat reports.

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Modelled footprint: both CM stages."""
        return self.stage1.nbytes + self.stage2.nbytes
