"""The holistic per-key approach (paper Sec. II-B, first category).

"[Single-key algorithms] are usually not suited for multi-key scenarios
as they require building and maintaining a separate data structure for
each key, significantly increasing storage use."  This baseline is that
approach, made concrete: a dictionary from key to its own quantile
estimator (GK / KLL / t-digest / DDSketch / Q-digest / exact,
selectable).

Its accuracy is excellent — each key gets a dedicated summary — but its
memory grows with the number of distinct keys, unboundedly on the
Cloud-like workload.  An optional ``max_keys`` cap models a deployment
that simply stops admitting new keys when full, which converts the
memory blow-up into a recall collapse; both failure modes are what
QuantileFilter exists to avoid.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.common.errors import ParameterError
from repro.detection.adapters import MultiKeyQuantileEstimator
from repro.quantiles.base import NEG_INF, QuantileSketch
from repro.quantiles.ddsketch import DDSketch
from repro.quantiles.exact import ExactQuantile
from repro.quantiles.gk import GKSummary
from repro.quantiles.kll import KLLSketch
from repro.quantiles.qdigest import QDigest
from repro.quantiles.tdigest import TDigest

#: Registered per-key estimator factories.
ESTIMATOR_FACTORIES: Dict[str, Callable[[], QuantileSketch]] = {
    "gk": lambda: GKSummary(eps=0.01),
    "kll": lambda: KLLSketch(k=128),
    "tdigest": lambda: TDigest(compression=100),
    "ddsketch": lambda: DDSketch(alpha=0.02),
    "qdigest": lambda: QDigest(k=64),
    "exact": ExactQuantile,
}


class PerKeyQuantileStore(MultiKeyQuantileEstimator):
    """One quantile estimator per distinct key.

    Parameters
    ----------
    estimator:
        Which single-key summary to instantiate per key (a name from
        :data:`ESTIMATOR_FACTORIES`).
    max_keys:
        Optional admission cap; once reached, unseen keys are silently
        dropped (their quantiles answer ``-inf``).  ``None`` = unbounded
        memory, the paper's "intolerable storage demands" regime.
    """

    def __init__(self, estimator: str = "gk", max_keys: Optional[int] = None):
        if estimator not in ESTIMATOR_FACTORIES:
            raise ParameterError(
                f"unknown estimator {estimator!r}; "
                f"choose from {sorted(ESTIMATOR_FACTORIES)}"
            )
        if max_keys is not None and max_keys < 1:
            raise ParameterError(f"max_keys must be >= 1, got {max_keys}")
        self.estimator_name = estimator
        self.max_keys = max_keys
        self._factory = ESTIMATOR_FACTORIES[estimator]
        self._stores: Dict[Hashable, QuantileSketch] = {}
        self.dropped_items = 0

    # ------------------------------------------------------------------
    # MultiKeyQuantileEstimator interface
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: float) -> None:
        """Route the value to the key's own summary (admitting if room)."""
        store = self._stores.get(key)
        if store is None:
            if self.max_keys is not None and len(self._stores) >= self.max_keys:
                self.dropped_items += 1
                return
            store = self._factory()
            self._stores[key] = store
        store.insert(value)

    def quantile(self, key: Hashable, delta: float, epsilon: float = 0.0) -> float:
        """The key's own summary, or ``-inf`` if never admitted."""
        store = self._stores.get(key)
        if store is None:
            return NEG_INF
        return store.quantile(delta, epsilon)

    def reset_key(self, key: Hashable) -> bool:
        """Clear the key's summary after a report."""
        store = self._stores.get(key)
        if store is None:
            return False
        store.clear()
        return True

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Live footprint: every per-key summary plus 8 B of key each."""
        return sum(8 + store.nbytes for store in self._stores.values())

    @property
    def tracked_keys(self) -> int:
        """Number of keys currently holding a summary."""
        return len(self._stores)
