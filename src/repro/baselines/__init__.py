"""From-scratch implementations of the paper's SOTA comparators.

Each follows the published design of the corresponding system closely
enough to reproduce its accuracy/space/speed *shape* on the detection
task:

* :class:`~repro.baselines.squad.Squad` — heavy-hitter-elected per-key
  GK summaries plus a background reservoir (SIGMOD'23 "SQUAD").
* :class:`~repro.baselines.sketchpolymer.SketchPolymer` — early-value
  filtering plus log-bucketed shared counters (KDD'23).
* :class:`~repro.baselines.histsketch.HistSketch` — per-key compact
  histograms with a heavy/light split (ICDE'23).

All three implement
:class:`~repro.detection.adapters.MultiKeyQuantileEstimator` and are
driven through :class:`~repro.detection.adapters.QueryOnInsertAdapter`
in the experiments.
"""

from repro.baselines.squad import Squad
from repro.baselines.sketchpolymer import SketchPolymer
from repro.baselines.histsketch import HistSketch
from repro.baselines.perkey import PerKeyQuantileStore

__all__ = ["Squad", "SketchPolymer", "HistSketch", "PerKeyQuantileStore"]
