"""HistSketch (He, Zhu & Huang, ICDE 2023), reimplemented.

"A compact data structure for accurate per-key distribution monitoring."
The design keeps full per-key histograms for keys that win a heavy part
slot, and per-bin shared sketches for everything else:

* **Heavy part** — a key-indexed hash table; each slot stores the full
  key, a ``num_bins``-bin histogram of its values, and an Elastic-style
  vote counter.  A colliding key votes against the incumbent and
  replaces it once negative votes exceed ``vote_lambda`` times the
  incumbent's count (the incumbent's histogram flushes to the light
  part).
* **Light part** — one small Count-Min sketch per histogram bin,
  absorbing evicted and never-elected keys.

Quantile queries reconstruct the key's histogram (heavy slot if owned,
plus its light-part remainders) and walk the cumulative bin counts.
Per-slot cost is large — key + votes + ``num_bins`` counters — which is
the "around 1 GB irrespective of configuration" footprint the
QuantileFilter paper observes on key-rich datasets: honest accuracy
needs a heavy slot per monitored key.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional

from repro.common.errors import ParameterError
from repro.common.hashing import canonical_key, mix64
from repro.detection.adapters import MultiKeyQuantileEstimator
from repro.quantiles.base import NEG_INF
from repro.sketches.count_min import CountMinSketch


class _HeavySlot:
    """One heavy-part cell: owner key, histogram, replacement votes."""

    __slots__ = ("key", "histogram", "total", "negative_votes")

    def __init__(self, num_bins: int):
        self.key: Optional[Hashable] = None
        self.histogram = [0] * num_bins
        self.total = 0
        self.negative_votes = 0

    def reset_to(self, key: Hashable) -> None:
        self.key = key
        for i in range(len(self.histogram)):
            self.histogram[i] = 0
        self.total = 0
        self.negative_votes = 0


class HistSketch(MultiKeyQuantileEstimator):
    """Per-key histogram monitoring over a byte budget.

    Parameters
    ----------
    memory_bytes:
        Total budget; ``heavy_fraction`` funds heavy slots, the rest the
        per-bin light sketches.
    num_bins:
        Histogram resolution (log-spaced bins over the value range).
    vote_lambda:
        Elastic-style replacement threshold: a slot is usurped when
        ``negative_votes > vote_lambda * total``.
    """

    def __init__(
        self,
        memory_bytes: int,
        *,
        num_bins: int = 16,
        value_min: float = 1e-3,
        value_max: float = 1e5,
        heavy_fraction: float = 0.7,
        vote_lambda: float = 8.0,
        depth: int = 2,
        seed: int = 0,
    ):
        if num_bins < 2:
            raise ParameterError(f"num_bins must be >= 2, got {num_bins}")
        if value_min <= 0 or value_max <= value_min:
            raise ParameterError(
                f"need 0 < value_min < value_max, got {value_min}, {value_max}"
            )
        if vote_lambda <= 0:
            raise ParameterError(f"vote_lambda must be > 0, got {vote_lambda}")
        self.num_bins = num_bins
        self.value_min = value_min
        self.value_max = value_max
        self.vote_lambda = vote_lambda
        self._log_span = math.log(value_max / value_min)

        # Heavy slot modelled cost: key 8 B + votes 8 B + bins x 4 B.
        self._slot_bytes = 16 + 4 * num_bins
        heavy_budget = max(self._slot_bytes, int(memory_bytes * heavy_fraction))
        light_budget = max(depth * 4 * num_bins, memory_bytes - heavy_budget)
        self.num_slots = max(1, heavy_budget // self._slot_bytes)
        self._slots: List[_HeavySlot] = [
            _HeavySlot(num_bins) for _ in range(self.num_slots)
        ]
        per_bin_bytes = max(depth * 4, light_budget // num_bins)
        self.light: List[CountMinSketch] = [
            CountMinSketch(
                depth=depth,
                width=max(1, per_bin_bytes // (depth * 4)),
                counter_kind="int32",
                seed=seed + 211 + b,
            )
            for b in range(num_bins)
        ]
        self._slot_seed = mix64(seed ^ 0x0F0F_F0F0_1234_4321)

    # ------------------------------------------------------------------
    # binning and placement
    # ------------------------------------------------------------------
    def bin_of(self, value: float) -> int:
        """Log-spaced bin index of ``value`` within [0, num_bins)."""
        value = min(max(value, self.value_min), self.value_max)
        frac = math.log(value / self.value_min) / self._log_span
        return min(int(frac * self.num_bins), self.num_bins - 1)

    def bin_upper_value(self, bin_index: int) -> float:
        """Upper edge of ``bin_index`` (the reported quantile value)."""
        frac = (bin_index + 1) / self.num_bins
        return self.value_min * math.exp(frac * self._log_span)

    def _slot_of(self, key_int: int) -> int:
        return mix64(key_int ^ self._slot_seed) % self.num_slots

    # ------------------------------------------------------------------
    # MultiKeyQuantileEstimator interface
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: float) -> None:
        """Heavy-slot update with voting; losers go to the light part."""
        key_int = canonical_key(key)
        slot = self._slots[self._slot_of(key_int)]
        bin_index = self.bin_of(value)

        if slot.key is None:
            slot.reset_to(key)
            slot.histogram[bin_index] += 1
            slot.total += 1
            return
        if slot.key == key:
            slot.histogram[bin_index] += 1
            slot.total += 1
            return

        # Collision: vote against the incumbent, record in light part.
        slot.negative_votes += 1
        self.light[bin_index].update(key_int, 1.0)
        if slot.negative_votes > self.vote_lambda * max(1, slot.total):
            self._flush_to_light(slot)
            slot.reset_to(key)
            slot.histogram[bin_index] += 1
            slot.total += 1

    def _flush_to_light(self, slot: _HeavySlot) -> None:
        evicted_int = canonical_key(slot.key)
        for bin_index, count in enumerate(slot.histogram):
            if count:
                self.light[bin_index].update(evicted_int, float(count))

    def quantile(self, key: Hashable, delta: float, epsilon: float = 0.0) -> float:
        """Histogram walk over heavy (if owned) + light bin counts."""
        key_int = canonical_key(key)
        slot = self._slots[self._slot_of(key_int)]
        counts = [0.0] * self.num_bins
        if slot.key == key:
            for b in range(self.num_bins):
                counts[b] += slot.histogram[b]
        for b in range(self.num_bins):
            counts[b] += max(0.0, self.light[b].estimate(key_int))
        total = sum(counts)
        if total <= 0:
            return NEG_INF
        index = math.floor(delta * total - epsilon)
        if index < 0:
            return NEG_INF
        target = min(index + 1, total)
        cumulative = 0.0
        for b, count in enumerate(counts):
            cumulative += count
            if cumulative >= target:
                return self.bin_upper_value(b)
        return self.bin_upper_value(self.num_bins - 1)

    def reset_key(self, key: Hashable) -> bool:
        """Zero the key's heavy histogram after a report (if owned)."""
        key_int = canonical_key(key)
        slot = self._slots[self._slot_of(key_int)]
        if slot.key == key:
            for b in range(self.num_bins):
                slot.histogram[b] = 0
            slot.total = 0
            return True
        return False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Modelled footprint: heavy slots + all per-bin sketches."""
        heavy = self.num_slots * self._slot_bytes
        light = sum(sketch.nbytes for sketch in self.light)
        return heavy + light
