"""SQUAD (Shahout, Friedman & Ben Basat, SIGMOD 2023), reimplemented.

"Together is better: heavy hitters quantile estimation" combines:

* a heavy-hitter structure (SpaceSaving here) that decides which keys
  deserve dedicated per-key quantile summaries,
* a GK summary per elected heavy key, and
* a uniform reservoir sample of the whole stream that answers (coarsely)
  for keys without their own summary.

Querying a tracked key walks its GK summary — the binary-search cost
footnote 2 of the QuantileFilter paper attributes to GK-based
solutions.  Querying an untracked key filters the reservoir, which is
slower still and noisy at small sample sizes; this is why SQUAD's recall
converges to 100 % only as memory grows (Figs. 4-5 of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.common.errors import ParameterError
from repro.detection.adapters import MultiKeyQuantileEstimator
from repro.quantiles.base import NEG_INF, paper_quantile_index
from repro.quantiles.gk import GKSummary
from repro.sketches.sampling import KeyedReservoirSampler
from repro.sketches.space_saving import SpaceSaving

#: Rough modelled bytes for one heavy-key slot: SpaceSaving entry (16 B)
#: plus a typical GK summary (~36 tuples x 16 B at eps = 0.01 over the
#: per-key value counts the experiments see).
_BYTES_PER_HEAVY_SLOT = 600
#: Modelled bytes per reservoir slot (key + value).
_BYTES_PER_SAMPLE_SLOT = 16


class Squad(MultiKeyQuantileEstimator):
    """Heavy-hitter quantile estimation over a byte budget.

    Parameters
    ----------
    memory_bytes:
        Total budget; ``heavy_fraction`` of it funds heavy-key slots,
        the rest the reservoir.
    heavy_fraction:
        Share of the budget for SpaceSaving + per-key summaries.
    gk_eps:
        Rank accuracy of each per-key GK summary.
    """

    def __init__(
        self,
        memory_bytes: int,
        *,
        heavy_fraction: float = 0.75,
        gk_eps: float = 0.01,
        seed: int = 0,
    ):
        if memory_bytes < _BYTES_PER_HEAVY_SLOT + _BYTES_PER_SAMPLE_SLOT:
            raise ParameterError(
                f"memory_bytes too small for SQUAD: {memory_bytes} "
                f"(need >= {_BYTES_PER_HEAVY_SLOT + _BYTES_PER_SAMPLE_SLOT})"
            )
        if not 0.0 < heavy_fraction < 1.0:
            raise ParameterError(
                f"heavy_fraction must be in (0, 1), got {heavy_fraction}"
            )
        heavy_budget = int(memory_bytes * heavy_fraction)
        sample_budget = memory_bytes - heavy_budget
        capacity = max(1, heavy_budget // _BYTES_PER_HEAVY_SLOT)
        self.gk_eps = gk_eps
        self.heavy = SpaceSaving(capacity)
        self.summaries: Dict[Hashable, GKSummary] = {}
        self.reservoir = KeyedReservoirSampler(
            max(1, sample_budget // _BYTES_PER_SAMPLE_SLOT), seed=seed
        )

    # ------------------------------------------------------------------
    # MultiKeyQuantileEstimator interface
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: float) -> None:
        """Feed one item to the electorate, summaries and reservoir."""
        evicted = self.heavy.update(key)
        if evicted is not None:
            # The evicted key's summary is lost — an inherent SQUAD error
            # source when the heavy set churns.
            self.summaries.pop(evicted, None)
        if key in self.heavy:
            summary = self.summaries.get(key)
            if summary is None:
                summary = GKSummary(eps=self.gk_eps)
                self.summaries[key] = summary
            summary.insert(value)
        self.reservoir.offer(key, value)

    def quantile(self, key: Hashable, delta: float, epsilon: float = 0.0) -> float:
        """Per-key summary if elected; reservoir sub-sample otherwise."""
        summary = self.summaries.get(key)
        if summary is not None and summary.count > 0:
            return summary.quantile(delta, epsilon)
        return self._sample_quantile(key, delta, epsilon)

    def _sample_quantile(self, key: Hashable, delta: float, epsilon: float) -> float:
        values: List[float] = self.reservoir.values_for(key)
        if not values:
            return NEG_INF
        values.sort()
        # The sample is a p-thinned view of the key's stream, so the rank
        # slack epsilon shrinks by the sampling probability.
        p = min(1.0, self.reservoir.capacity / max(1, self.reservoir.seen))
        index = paper_quantile_index(len(values), delta, epsilon * p)
        if index is None:
            return NEG_INF
        return values[index]

    def reset_key(self, key: Hashable) -> bool:
        """Clear a tracked key's summary after a report (if it has one)."""
        summary = self.summaries.get(key)
        if summary is not None:
            summary.clear()
            return True
        return False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Live modelled footprint: electorate + summaries + reservoir."""
        summaries = sum(s.nbytes for s in self.summaries.values())
        return self.heavy.nbytes + summaries + self.reservoir.nbytes

    @property
    def tracked_keys(self) -> int:
        """Number of keys currently holding a per-key summary."""
        return len(self.summaries)
