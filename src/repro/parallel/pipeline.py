"""Multiprocessing pipeline feeding stream chunks to shard workers.

One worker process per shard, each owning a private shard filter (batch
engine by default).  The master slices the stream into chunks, routes
each chunk's items to their owning shards (:class:`~repro.parallel.
sharded.ShardRouter` — the same bucket-affine partition the in-process
:class:`~repro.parallel.sharded.ShardedQuantileFilter` uses, so both
paths report identical key sets), and collects newly-reported keys
through a **bounded** result queue.

Chunk transport is selectable: ``transport="pickle"`` (default)
pickles each ndarray slice into the worker queue; ``transport="shm"``
writes slices into a per-worker :mod:`multiprocessing.shared_memory`
slot ring (:class:`~repro.parallel.transport.ShmSlotRing`) and sends
only ``(slot_id, length, chunk_id)`` descriptors — zero-copy on the
worker side, with credit-based slot return riding the report acks.
Both transports deliver byte-identical chunk contents, so reported
keys do not depend on the choice.

Consistency model (also documented in ``docs/operations.md``):

* Within a shard, reports follow stream order — each worker consumes
  its chunks strictly in sequence.
* ``mode="unordered"`` surfaces report batches as workers produce them
  (shard interleaving is nondeterministic, contents are not).
* ``mode="ordered"`` buffers batches until every shard has finished a
  chunk, then releases chunks in stream order (and shard order within
  a chunk) — deterministic delivery at the cost of buffering.
* Periodic global views: every ``merge_every`` chunks the master
  requests shard snapshots and folds them into one filter with
  :meth:`~repro.core.quantile_filter.QuantileFilter.merge`.  The
  snapshot request rides the same per-worker queue as the chunks, so
  each view is a consistent per-shard cut between chunks.

Telemetry: built with ``collect_stats=True``, every worker attaches a
:class:`~repro.observability.registry.StatsRegistry` to its shard
filter (:func:`~repro.observability.instrument.observe_filter`).
Per-shard snapshots ride the worker queues — on demand
(:meth:`ParallelPipeline.collect_stats_view`) and with the final
``done`` messages — and aggregate master-side into
``PipelineResult.stats`` / ``per_shard_stats`` alongside the master's
own ``pipeline_*`` counters (chunks/items fed, batches released, queue
depths, worker liveness).  See ``docs/observability.md``.

Tracing & provenance: ``collect_trace=True`` attaches a
:class:`~repro.observability.tracing.Tracer` to the master (feed /
merge / collect spans) and one to every worker (queue-wait and insert
spans, plus sampled filter-core instants on the scalar engine); worker
events ride the ``done`` messages and fold into one Chrome-trace
timeline in ``PipelineResult.trace_events``.  ``collect_provenance=
True`` (scalar engine only) makes every worker report carry a
:class:`~repro.observability.provenance.ReportProvenance` audit record,
returned JSON-ready in ``PipelineResult.report_records``.  Lifecycle
events log structurally through the ``repro.pipeline`` stdlib logger
(see :func:`repro.observability.logs.configure_json_logging`).

Failure model: every blocking queue operation is bounded by timeouts
and interleaved with worker liveness checks.  A worker that dies
(crash, OOM-kill) surfaces as :class:`WorkerCrashError`; a worker that
raises ships its traceback back as :class:`WorkerFailedError`; a stall
longer than ``stall_timeout`` raises :class:`PipelineStallError`.  In
all cases the pipeline terminates remaining workers — it never hangs
(``tests/integration/test_parallel_stack.py``).
"""

from __future__ import annotations

import copy
import logging
import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.common.errors import ReproError, ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.observability.instrument import observe_filter
from repro.observability.provenance import provenance_record
from repro.observability.registry import StatsRegistry, aggregate_snapshots
from repro.observability.tracing import Tracer, attach_filter_tracing
from repro.parallel.concurrent import ConcurrentQuantileFilter
from repro.parallel.sharded import ENGINES, ShardRouter, batch_filter_to_scalar
from repro.parallel.transport import ShmSlotRing

#: Lifecycle logger (silent unless the host configures a handler, e.g.
#: repro.observability.logs.configure_json_logging for JSON lines).
LOGGER = logging.getLogger("repro.pipeline")

#: Default items per pipeline chunk.
DEFAULT_CHUNK_ITEMS = 16_384

#: Supported chunk transports (see the module docstring and
#: ``docs/performance.md``).
TRANSPORTS = ("pickle", "shm")

#: Engines the pipeline can run: the process-per-shard engines plus the
#: in-process thread engine (one shared
#: :class:`~repro.parallel.concurrent.ConcurrentQuantileFilter`, one
#: updater thread per "shard", no chunk transport at all).
PIPELINE_ENGINES = ENGINES + ("threads",)

#: Placeholder array for empty shm chunk slices (never read beyond its
#: zero length, so one instance serves both keys and values).
_EMPTY_CHUNK = np.empty(0, dtype=np.int64)


class PipelineError(ReproError):
    """Base class of pipeline failure modes."""


class WorkerCrashError(PipelineError):
    """A worker process died without reporting (killed / crashed)."""


class WorkerFailedError(PipelineError):
    """A worker raised; carries the remote traceback text."""


class PipelineStallError(PipelineError):
    """No progress within ``stall_timeout`` seconds."""


@dataclass
class ReportBatch:
    """Newly-reported keys from one (chunk, shard) work unit."""

    chunk_id: int
    shard_id: int
    keys: List


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    reported_keys: Set
    items: int
    seconds: float
    num_shards: int
    mode: str
    chunks: int
    per_shard_items: List[int]
    per_shard_reports: List[int]
    batches: List[ReportBatch] = field(default_factory=list)
    merged: Optional[QuantileFilter] = None
    #: Aggregated telemetry snapshot (worker registries summed per the
    #: metric aggregation rules, plus the master's pipeline_* samples).
    #: None unless the pipeline ran with ``collect_stats=True``.
    stats: Optional[Dict[str, float]] = None
    #: One snapshot dict per shard, in shard order (collect_stats only).
    per_shard_stats: Optional[List[Dict[str, float]]] = None
    #: Chrome trace events (master + workers, one timeline).  None
    #: unless the pipeline ran with ``collect_trace=True``.
    trace_events: Optional[List[dict]] = None
    #: JSON-ready report/provenance records in per-shard arrival order.
    #: None unless the pipeline ran with ``collect_provenance=True``.
    report_records: Optional[List[dict]] = None

    @property
    def mops(self) -> float:
        """Million items per second of wall time."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds / 1e6


def _build_worker_filter(config: dict, on_report=None):
    common = dict(
        num_buckets=config["num_buckets"],
        vague_width=config["vague_width"],
        bucket_size=config["bucket_size"],
        depth=config["depth"],
        fp_bits=config["fp_bits"],
        strategy=config["strategy"],
        seed=config["seed"],
    )
    if config["engine"] == "batch":
        return BatchQuantileFilter(config["criteria"], **common)
    return QuantileFilter(
        config["criteria"],
        counter_kind="float",
        collect_provenance=bool(config.get("provenance")),
        on_report=on_report,
        **common,
    )


def _worker_main(
    shard_id: int, config: dict, in_queue, out_queue, shm_info=None
) -> None:
    """Worker loop: build the shard filter, consume chunks until stop."""
    ring = None
    recorder = None
    try:
        engine = config["engine"]
        if shm_info is not None:
            ring = ShmSlotRing.attach(
                shm_info["name"],
                shm_info["num_slots"],
                shm_info["slot_items"],
                untrack=shm_info["untrack"],
            )
        report_records: Optional[List[dict]] = (
            [] if config.get("provenance") else None
        )
        on_report = (
            report_records.append if report_records is not None else None
        )
        if on_report is not None:
            raw_append = on_report

            def on_report(report, _append=raw_append):  # noqa: F811
                _append(provenance_record(report))

        filt = _build_worker_filter(config, on_report=on_report)
        record_config = config.get("record")
        if record_config:
            from repro.observability.recorder import FlightRecorder

            recorder = FlightRecorder(
                filt,
                max_chunks=record_config["max_chunks"],
                incident_dir=(
                    Path(record_config["incident_dir"]) / f"shard-{shard_id}"
                ),
                config={"shard": shard_id, "engine": engine},
            )
        tracer = None
        if config.get("trace"):
            tracer = Tracer(capacity=config.get("trace_capacity", 65_536))
            if engine == "scalar":
                attach_filter_tracing(
                    filt, tracer,
                    sample_every=config.get("trace_sample_every", 64),
                )
        registry = chunk_counter = insert_hist = None
        if config.get("stats"):
            registry = observe_filter(filt)
            chunk_counter = registry.counter(
                "worker_chunks_total",
                help="Chunks this shard worker has consumed.",
            )
            insert_hist = registry.histogram(
                "worker_insert_seconds",
                help="Per-chunk shard insert latency (batch insert time).",
            )
            if tracer is not None:
                registry.counter_fn(
                    "tracer_dropped_events_total",
                    lambda: tracer.dropped,
                    help="Trace events dropped by a full ring buffer.",
                    labels={"role": f"shard-{shard_id}"},
                )
            if recorder is not None:
                from repro.observability.recorder import observe_recorder

                observe_recorder(
                    recorder, registry,
                    labels={"role": f"shard-{shard_id}"},
                )
        known: Set = set()
        while True:
            if tracer is not None:
                wait_start = time.perf_counter()
                message = in_queue.get()
                tracer.add_span(
                    "shard_queue_wait", wait_start, time.perf_counter(),
                    args={"shard": shard_id},
                )
            else:
                message = in_queue.get()
            kind = message[0]
            if kind == "chunk" or kind == "chunk_shm":
                slot_id = -1
                if kind == "chunk_shm":
                    # Descriptor-only message: the chunk data sits in
                    # this worker's shared-memory slot; slot_id == -1
                    # marks an empty slice (no slot consumed).
                    _, chunk_id, slot_id, length = message
                    if slot_id >= 0:
                        keys, values = ring.read(slot_id, length)
                    else:
                        keys = values = _EMPTY_CHUNK
                else:
                    _, chunk_id, keys, values = message
                if keys.shape[0]:
                    insert_start = time.perf_counter()
                    if recorder is not None:
                        # The recorder IS the insert path while
                        # recording: it applies the chunk through the
                        # same engine call after capturing it.
                        recorder.feed(keys, values)
                    elif engine == "batch":
                        filt.process(keys, values)
                    else:
                        filt.insert_many(keys, values)
                    insert_end = time.perf_counter()
                    if insert_hist is not None:
                        insert_hist.record(insert_end - insert_start)
                    if tracer is not None:
                        tracer.add_span(
                            "shard_insert", insert_start, insert_end,
                            args={
                                "shard": shard_id,
                                "chunk": chunk_id,
                                "items": int(keys.shape[0]),
                            },
                        )
                if chunk_counter is not None:
                    chunk_counter.inc()
                fresh = filt.reported_keys - known
                known |= fresh
                # The ack carries the slot credit back to the master:
                # once this message is posted the slot may be reused.
                out_queue.put(
                    ("reports", chunk_id, shard_id, list(fresh),
                     time.perf_counter(), slot_id)
                )
            elif kind == "retarget":
                # Rides the same FIFO as the chunks, so the new T takes
                # effect at a consistent between-chunks cut per shard.
                _, new_threshold = message
                filt.retarget(new_threshold)
                if recorder is not None:
                    # Re-base the recorder: retargets are not replayed
                    # as events, so no retained chunk may straddle one.
                    recorder.note_discontinuity(f"retarget:{new_threshold}")
            elif kind == "snapshot":
                _, sync_id = message
                if engine == "batch":
                    snapshot = batch_filter_to_scalar(filt)
                else:
                    # Ship a sanitized copy: hooks, callbacks and the
                    # stats registry hold closures that cannot pickle.
                    snapshot = copy.copy(filt)
                    snapshot.trace_hook = None
                    snapshot._on_report = None
                    if hasattr(snapshot, "_stats_registry"):
                        snapshot._stats_registry = None
                out_queue.put(("snapshot", sync_id, shard_id, snapshot))
            elif kind == "stats":
                _, sync_id = message
                stats = registry.snapshot() if registry is not None else {}
                out_queue.put(("stats", sync_id, shard_id, stats))
            elif kind == "dump":
                # Alert-triggered forensics: dump this shard's recorder
                # window at a consistent between-chunks cut (the request
                # rides the chunk FIFO like stats/snapshot syncs).
                _, sync_id, reason = message
                path = (
                    str(recorder.dump(reason)) if recorder is not None
                    else None
                )
                out_queue.put(("dump", sync_id, shard_id, path))
            elif kind == "stop":
                final_stats = (
                    registry.snapshot() if registry is not None else None
                )
                trace_events = (
                    tracer.chrome_events() if tracer is not None else None
                )
                out_queue.put(
                    ("done", shard_id, filt.items_processed,
                     filt.report_count, final_stats, trace_events,
                     report_records)
                )
                return
            else:  # pragma: no cover - defensive
                raise ParameterError(f"unknown worker message {kind!r}")
    except Exception:
        tb_text = traceback.format_exc()
        if recorder is not None:
            try:
                bundle_path = recorder.dump(
                    "worker_crash", extra={"traceback": tb_text}
                )
                tb_text += f"\n[incident bundle: {bundle_path}]"
            except Exception:  # pragma: no cover - best-effort forensics
                pass
        out_queue.put(("error", shard_id, tb_text))
    finally:
        if ring is not None:
            ring.close()


def _thread_worker_main(
    shard_id: int,
    filt: ConcurrentQuantileFilter,
    in_queue,
    out_queue,
    known: Set,
    known_lock,
) -> None:
    """Updater-thread loop for ``engine="threads"``.

    Same message protocol as the process workers, minus transport:
    chunk arrays arrive by reference through a plain ``queue.Queue``
    and flush straight into the shared filter via a thread-local
    :class:`~repro.parallel.concurrent.ThreadIngest`.  Fresh-report
    extraction diffs the shared report set against a shared ``known``
    set under ``known_lock`` — each reported key is claimed by exactly
    one thread, so batches never duplicate a key.  The diff (a copy of
    every stripe's report set) only runs when the filter's report
    count moved since this thread last looked, and empty batches post
    no message at all: threads mode is unordered-only, so the master
    needs no per-chunk acks.
    """
    try:
        ingest = filt.ingest()
        items = 0
        claimed = 0
        seen_reports = 0
        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "chunk":
                _, chunk_id, keys, values = message
                if keys.shape[0]:
                    ingest.insert_many(keys, values)
                    items += int(keys.shape[0])
                fresh = ()
                count = filt.report_count
                if count != seen_reports:
                    seen_reports = count
                    with known_lock:
                        fresh = filt.reported_keys - known
                        known |= fresh
                if fresh:
                    claimed += len(fresh)
                    out_queue.put(
                        ("reports", chunk_id, shard_id, list(fresh),
                         time.perf_counter(), -1)
                    )
            elif kind == "retarget":
                # Barrier protocol: flush, ack on the result queue (the
                # master drains while it waits, so a full queue cannot
                # deadlock the rendezvous), park until the master has
                # applied the new T on the shared filter.
                _, sync_id, release = message
                ingest.flush()
                out_queue.put(("barrier", sync_id, shard_id))
                release.wait()
            elif kind == "stop":
                ingest.flush()
                with known_lock:
                    fresh = filt.reported_keys - known
                    known |= fresh
                if fresh:
                    claimed += len(fresh)
                    out_queue.put(
                        ("reports", -1, shard_id, list(fresh),
                         time.perf_counter(), -1)
                    )
                out_queue.put(
                    ("done", shard_id, items, claimed, None, None, None)
                )
                return
            else:  # pragma: no cover - defensive
                raise ParameterError(f"unknown worker message {kind!r}")
    except Exception:
        out_queue.put(("error", shard_id, traceback.format_exc()))


class ParallelPipeline:
    """Process-per-shard QuantileFilter pipeline over integer-keyed streams.

    ``engine="threads"`` swaps the process workers for updater threads
    sharing one :class:`~repro.parallel.concurrent.
    ConcurrentQuantileFilter` (exposed as :attr:`filter`): same
    ``feed``/``finish``/``retarget`` API, but chunks cross no process
    boundary at all — no pickle, no shared-memory ring, no per-chunk
    copy, and no master-side key hashing either: whole chunks go to
    one updater round-robin, because the shared filter's stripe locks
    make any-thread/any-key safe (see the equal-core head-to-head in
    ``benchmarks/test_throughput_smoke.py``).  Ordered
    delivery, tracing, provenance and flight recording stay
    process-engine features and raise ``ParameterError`` up front.

    Use as a one-shot ``run(keys, values)`` or stream explicitly::

        pipe = ParallelPipeline(criteria, 4, num_buckets=4096,
                                vague_width=2048)
        pipe.start()
        for chunk_keys, chunk_values in chunks:
            pipe.feed(chunk_keys, chunk_values)
        result = pipe.finish()

    Parameters
    ----------
    mode:
        ``"unordered"`` (default) or ``"ordered"`` report delivery.
    transport:
        ``"pickle"`` (default) ships each chunk slice through the
        worker queue as pickled ndarrays; ``"shm"`` copies slices into
        a per-worker shared-memory slot ring and sends only
        ``(slot_id, length, chunk_id)`` descriptors, with slot credits
        returned on the report acks (see ``docs/performance.md``).
        Reported keys are identical either way.
    chunk_items:
        Items per chunk fed to the workers (also the shm slot size).
    queue_capacity:
        Bound (in chunks) of each worker's input queue; the shared
        result queue is bounded proportionally.  Backpressure, not
        unbounded buffering.
    merge_every:
        Every this-many chunks, collect a merged global view and pass
        it to ``on_merge`` (also kept as :attr:`last_merged`).
    collect_merged:
        Collect one final merged view into ``result.merged``.
    on_reports:
        Callback receiving each :class:`ReportBatch` as it is released
        (after ordering in ordered mode).
    record / incident_dir / record_chunks:
        ``record=True`` gives every shard worker a
        :class:`~repro.observability.recorder.FlightRecorder` retaining
        its last ``record_chunks`` chunks; each worker dumps an
        incident bundle into ``incident_dir/shard-<id>/`` when it
        crashes (the bundle path is appended to the error surfaced by
        :class:`WorkerFailedError`), making the crash replayable with
        ``repro record replay``.
    """

    def __init__(
        self,
        criteria: Criteria,
        num_shards: int,
        *,
        engine: str = "batch",
        memory_bytes: Optional[int] = None,
        num_buckets: Optional[int] = None,
        vague_width: Optional[int] = None,
        bucket_size: int = 6,
        depth: int = 3,
        fp_bits: int = 16,
        strategy: str = "comparative",
        seed: int = 0,
        mode: str = "unordered",
        transport: str = "pickle",
        chunk_items: int = DEFAULT_CHUNK_ITEMS,
        queue_capacity: int = 4,
        stall_timeout: float = 30.0,
        merge_every: Optional[int] = None,
        collect_merged: bool = False,
        collect_stats: bool = False,
        collect_trace: bool = False,
        collect_provenance: bool = False,
        tracer: Optional[Tracer] = None,
        trace_sample_every: int = 64,
        on_reports: Optional[Callable[[ReportBatch], None]] = None,
        on_merge: Optional[Callable[[QuantileFilter, int], None]] = None,
        start_method: Optional[str] = None,
        record: bool = False,
        incident_dir=None,
        record_chunks: int = 32,
        num_stripes: Optional[int] = None,
    ):
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        if engine not in PIPELINE_ENGINES:
            raise ParameterError(
                f"unknown engine {engine!r}; choose from {PIPELINE_ENGINES}"
            )
        self._threads = engine == "threads"
        if self._threads:
            unsupported = [
                ("mode='ordered'", mode == "ordered"),
                ("transport='shm'", transport == "shm"),
                ("collect_trace", collect_trace or tracer is not None),
                ("collect_provenance", collect_provenance),
                ("record", record),
            ]
            bad = [name for name, flagged in unsupported if flagged]
            if bad:
                raise ParameterError(
                    f"engine='threads' does not support {', '.join(bad)}: "
                    "updater threads share one filter in this process, so "
                    "there is no chunk transport to choose, report "
                    "delivery is inherently unordered (commits race), and "
                    "the per-worker trace/provenance/recorder hooks are "
                    "process-engine features — use engine='batch' or "
                    "engine='scalar' for those"
                )
        elif num_stripes is not None:
            raise ParameterError(
                "num_stripes only applies to engine='threads' (it is the "
                "shared filter's lock-stripe count)"
            )
        if mode not in ("unordered", "ordered"):
            raise ParameterError(
                f"mode must be 'unordered' or 'ordered', got {mode!r}"
            )
        if transport not in TRANSPORTS:
            raise ParameterError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if chunk_items < 1:
            raise ParameterError(f"chunk_items must be >= 1, got {chunk_items}")
        if queue_capacity < 1:
            raise ParameterError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if merge_every is not None and merge_every < 1:
            raise ParameterError(f"merge_every must be >= 1, got {merge_every}")
        if trace_sample_every < 1:
            raise ParameterError(
                f"trace_sample_every must be >= 1, got {trace_sample_every}"
            )
        if collect_provenance and engine != "scalar":
            raise ParameterError(
                "collect_provenance needs engine='scalar': the batch "
                "engine tracks reported keys, not Report objects"
            )
        if record and incident_dir is None:
            raise ParameterError(
                "record=True needs incident_dir: worker recorders dump "
                "crash bundles to disk (a memory-only ring dies with "
                "the worker process)"
            )
        if record_chunks < 1:
            raise ParameterError(
                f"record_chunks must be >= 1, got {record_chunks}"
            )
        self.criteria = criteria
        self.num_shards = num_shards
        self.engine = engine
        self.mode = mode
        self.transport = transport
        self.chunk_items = chunk_items
        self.queue_capacity = queue_capacity
        self.stall_timeout = stall_timeout
        self.merge_every = merge_every
        self.collect_merged = collect_merged
        self.collect_stats = collect_stats
        self.collect_trace = collect_trace or tracer is not None
        self.collect_provenance = collect_provenance
        #: Master tracer; worker spans fold into it at finish().
        self.tracer: Optional[Tracer] = (
            tracer if tracer is not None
            else (Tracer() if self.collect_trace else None)
        )
        self._on_reports = on_reports
        self._on_merge = on_merge
        self.record = record
        self.incident_dir = Path(incident_dir) if incident_dir else None

        # Resolve the geometry once in the master (a throwaway template
        # filter applies the byte-budget split), then ship explicit
        # dimensions to the workers so every process agrees exactly.
        template_kwargs = dict(
            num_buckets=num_buckets,
            vague_width=vague_width,
            bucket_size=bucket_size,
            depth=depth,
            fp_bits=fp_bits,
            strategy=strategy,
            seed=seed,
        )
        self.filter: Optional[ConcurrentQuantileFilter] = None
        self._filter_registry = None
        if self._threads:
            # The shared filter IS the template: one structure, built
            # here, updated in place by every worker thread.  Chunks
            # are handed out round-robin (any thread may touch any
            # bucket), so the stripe count trades lock granularity
            # against per-flush sub-chunk overhead; a small multiple
            # of the thread count keeps racing flushes mostly on
            # different stripes.
            self.filter = ConcurrentQuantileFilter(
                criteria,
                memory_bytes,
                flush_items=chunk_items,
                num_stripes=(
                    num_stripes if num_stripes is not None
                    else 2 * num_shards
                ),
                **template_kwargs,
            )
            resolved_buckets = self.filter.num_buckets
            resolved_width = self.filter.width
            if collect_stats:
                self._filter_registry = observe_filter(self.filter)
        elif engine == "batch":
            template = BatchQuantileFilter(
                criteria, memory_bytes, **template_kwargs
            )
            resolved_buckets, resolved_width = template.num_buckets, template.width
        else:
            template = QuantileFilter(
                criteria, memory_bytes, counter_kind="float", **template_kwargs
            )
            resolved_buckets = template.candidate.num_buckets
            resolved_width = template.vague.width
        self._config = dict(
            criteria=criteria,
            engine=engine,
            num_buckets=resolved_buckets,
            vague_width=resolved_width,
            bucket_size=bucket_size,
            depth=depth,
            fp_bits=fp_bits,
            strategy=strategy,
            seed=seed,
            stats=collect_stats,
            trace=self.collect_trace,
            trace_sample_every=trace_sample_every,
            provenance=collect_provenance,
            record=(
                dict(incident_dir=str(self.incident_dir),
                     max_chunks=record_chunks)
                if record else None
            ),
        )
        self.router = ShardRouter(num_shards, resolved_buckets, seed=seed)

        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)

        self.workers: List = []
        self._in_queues: List = []
        self._out_queue = None
        # Shared-memory transport state (transport="shm" only): one
        # slot ring per shard plus the master-side free-slot credits.
        self._rings: Optional[List[ShmSlotRing]] = None
        self._free_slots: List[List[int]] = []
        self._started = False
        self._finished = False
        self._chunk_id = 0
        self._sync_id = 0
        self.items_fed = 0
        self.last_merged: Optional[QuantileFilter] = None
        # Collection state.
        self._reported: Set = set()
        self._batches: List[ReportBatch] = []
        self._pending: Dict[int, List[ReportBatch]] = {}
        self._acks: Dict[int, int] = {}
        self._next_release = 0
        # shard -> (items, reports, stats, trace_events, report_records)
        self._done: Dict[int, Tuple] = {}
        self._snapshots: Dict[int, List] = {}
        self._stat_views: Dict[int, Dict[int, dict]] = {}
        self._barrier_acks: Dict[int, Set[int]] = {}
        # sync_id -> {shard_id: bundle path or None} for dump requests.
        self._dump_acks: Dict[int, Dict[int, Optional[str]]] = {}

        # Master-side telemetry: always registered (the counters are a
        # few adds per *chunk*, not per item), rendered by repro stats.
        self.stats = StatsRegistry()
        self._chunks_counter = self.stats.counter(
            "pipeline_chunks_fed_total",
            help="Chunks sliced off the stream and dispatched to workers.",
        )
        self._items_counter = self.stats.counter(
            "pipeline_items_fed_total",
            help="Items dispatched to workers.",
        )
        self._batches_counter = self.stats.counter(
            "pipeline_report_batches_total",
            help="Report batches released to the caller.",
        )
        self._merges_counter = self.stats.counter(
            "pipeline_merge_views_total",
            help="Merged global views collected from shard snapshots.",
        )
        self._stat_views_counter = self.stats.counter(
            "pipeline_stats_views_total",
            help="Telemetry views collected from worker registries.",
        )
        self._retargets_counter = self.stats.counter(
            "pipeline_retargets_total",
            help="Threshold retargets broadcast to all shard workers.",
        )
        self.stats.gauge_fn(
            "qf_threshold",
            lambda: self.criteria.threshold,
            help="Value threshold T currently in force.",
            agg="mean",
        )
        self.stats.gauge_fn(
            "pipeline_reported_keys",
            lambda: len(self._reported),
            help="Distinct keys reported across all shards so far.",
        )
        self.stats.gauge_fn(
            "pipeline_workers_alive",
            lambda: sum(1 for w in self.workers if w.is_alive()),
            help="Shard worker processes currently alive.",
        )
        # Report-batch queue delay: stamped by the worker at put() time,
        # measured when the master drains the batch.  Mergeable log
        # buckets, so `repro stats` can print a cross-run p99.
        self._queue_delay_hist = self.stats.histogram(
            "pipeline_report_queue_delay_seconds",
            help="Delay between a worker posting a report batch and the "
            "master draining it.",
        )
        if self.tracer is not None:
            self.stats.counter_fn(
                "tracer_dropped_events_total",
                lambda: self.tracer.dropped,
                help="Trace events dropped by a full ring buffer.",
                labels={"role": "master"},
            )
        self.last_stats: Optional[Dict[str, float]] = None
        self.last_per_shard_stats: Optional[List[Dict[str, float]]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ParallelPipeline":
        """Spawn the shard workers; idempotent until :meth:`finish`."""
        if self._started:
            return self
        if self._threads:
            return self._start_threads()
        self._out_queue = self._ctx.Queue(
            maxsize=max(8, 2 * self.num_shards * self.queue_capacity)
        )
        if self.transport == "shm":
            # queue_capacity chunks may sit in the input queue plus one
            # in flight in the worker and one being written by the
            # master — hence capacity + 2 slots can never wrap onto a
            # slot a worker still reads.
            num_slots = self.queue_capacity + 2
            self._rings = [
                ShmSlotRing.create(num_slots, self.chunk_items)
                for _ in range(self.num_shards)
            ]
            self._free_slots = [
                list(range(num_slots)) for _ in range(self.num_shards)
            ]
        for shard_id in range(self.num_shards):
            in_queue = self._ctx.Queue(maxsize=self.queue_capacity)
            shm_info = None
            if self._rings is not None:
                ring = self._rings[shard_id]
                shm_info = dict(
                    name=ring.name,
                    num_slots=ring.num_slots,
                    slot_items=ring.slot_items,
                    # multiprocessing children (fork AND spawn — the
                    # tracker fd rides the spawn preparation data)
                    # share the master's resource tracker; untracking
                    # would erase the master's claim on the block.
                    untrack=False,
                )
            worker = self._ctx.Process(
                target=_worker_main,
                args=(
                    shard_id, self._config, in_queue, self._out_queue,
                    shm_info,
                ),
                daemon=True,
                name=f"qf-shard-{shard_id}",
            )
            worker.start()
            self._in_queues.append(in_queue)
            self.workers.append(worker)
            self.stats.gauge_fn(
                "pipeline_queue_depth",
                (lambda s=shard_id: self._queue_depth(s)),
                help="Chunks waiting in this shard's input queue.",
                labels={"shard": str(shard_id)},
            )
        self._started = True
        LOGGER.info(
            "pipeline started",
            extra={
                "event": "start",
                "shards": self.num_shards,
                "engine": self.engine,
                "mode": self.mode,
                "transport": self.transport,
                "chunk_items": self.chunk_items,
                "trace": self.collect_trace,
                "provenance": self.collect_provenance,
            },
        )
        return self

    def _start_threads(self) -> "ParallelPipeline":
        """Spawn the updater threads sharing :attr:`filter`."""
        self._out_queue = queue_module.Queue(
            maxsize=max(8, 2 * self.num_shards * self.queue_capacity)
        )
        known: Set = set()
        known_lock = threading.Lock()
        for shard_id in range(self.num_shards):
            in_queue = queue_module.Queue(maxsize=self.queue_capacity)
            worker = threading.Thread(
                target=_thread_worker_main,
                args=(
                    shard_id, self.filter, in_queue, self._out_queue,
                    known, known_lock,
                ),
                daemon=True,
                name=f"qf-thread-{shard_id}",
            )
            worker.start()
            self._in_queues.append(in_queue)
            self.workers.append(worker)
            self.stats.gauge_fn(
                "pipeline_queue_depth",
                (lambda s=shard_id: self._queue_depth(s)),
                help="Chunks waiting in this shard's input queue.",
                labels={"shard": str(shard_id)},
            )
        self._started = True
        LOGGER.info(
            "pipeline started",
            extra={
                "event": "start",
                "shards": self.num_shards,
                "engine": self.engine,
                "mode": self.mode,
                "transport": "none",
                "chunk_items": self.chunk_items,
                "trace": self.collect_trace,
                "provenance": self.collect_provenance,
            },
        )
        return self

    def _queue_depth(self, shard_id: int) -> int:
        """Best-effort input-queue depth (0 where qsize is unsupported)."""
        if shard_id >= len(self._in_queues):
            return 0
        try:
            return self._in_queues[shard_id].qsize()
        except (NotImplementedError, OSError, ValueError):
            return 0

    def __enter__(self) -> "ParallelPipeline":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def feed(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Slice a stream segment into chunks and dispatch them."""
        if self._finished:
            raise PipelineError(
                "pipeline already finished; build a new ParallelPipeline "
                "to process another stream"
            )
        if not self._started:
            self.start()
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape[0] != values.shape[0]:
            raise ParameterError(
                f"keys and values length mismatch: {keys.shape[0]} vs "
                f"{values.shape[0]}"
            )
        feed_start = time.perf_counter() if self.tracer is not None else 0.0
        first_chunk = self._chunk_id
        for start in range(0, keys.shape[0], self.chunk_items):
            chunk_keys = keys[start:start + self.chunk_items]
            chunk_values = values[start:start + self.chunk_items]
            chunk_id = self._chunk_id
            self._chunk_id += 1
            if self._threads:
                # The shared filter accepts any key from any thread
                # (the stripe locks own correctness), so threads mode
                # needs no key hashing at all: hand the whole chunk to
                # one updater round-robin.  One queue put per chunk
                # instead of num_shards, and the master never touches
                # the key array.
                self._put(
                    chunk_id % self.num_shards,
                    ("chunk", chunk_id, chunk_keys, chunk_values),
                )
            else:
                slices = self.router.split(chunk_keys, chunk_values)
                # Every shard gets a (possibly empty) slice of every
                # chunk: uniform acks keep ordered-mode accounting
                # trivial.
                for shard_id, (sub_keys, sub_values) in enumerate(slices):
                    if self._rings is not None:
                        length = int(sub_keys.shape[0])
                        slot_id = -1
                        if length:
                            slot_id = self._acquire_slot(shard_id)
                            self._rings[shard_id].write(
                                slot_id, sub_keys, sub_values
                            )
                        self._put(
                            shard_id,
                            ("chunk_shm", chunk_id, slot_id, length),
                        )
                    else:
                        self._put(
                            shard_id,
                            ("chunk", chunk_id, sub_keys, sub_values),
                        )
            self.items_fed += int(chunk_keys.shape[0])
            self._chunks_counter.inc()
            self._items_counter.inc(int(chunk_keys.shape[0]))
            if self.merge_every and (chunk_id + 1) % self.merge_every == 0:
                self._collect_merged_view()
        if self.tracer is not None:
            self.tracer.add_span(
                "pipeline_feed", feed_start, time.perf_counter(),
                args={
                    "items": int(keys.shape[0]),
                    "chunks": self._chunk_id - first_chunk,
                },
            )

    def retarget(self, threshold: float) -> Criteria:
        """Broadcast a value-threshold change to every shard worker.

        The adaptive-threshold control path for pipelines
        (:class:`~repro.detection.threshold.ThresholdControlLoop`).
        The message rides each worker's input queue *behind* any chunks
        already enqueued — the same delivery rule as snapshot and stats
        requests — so every shard applies the change at a consistent
        between-chunks cut and no chunk ever sees a mid-chunk swap.
        Shard state (candidate entries, vague counters, report history)
        is preserved.

        The master's own criteria move too, keeping later merged views
        merge-compatible with the shard snapshots, and the change shows
        up in telemetry as ``pipeline_retargets_total`` and the
        ``qf_threshold`` gauge.  Returns the new criteria.
        """
        if self._finished:
            raise PipelineError(
                "pipeline already finished; cannot retarget"
            )
        if not self._started:
            self.start()
        self.criteria = self.criteria.with_updates(threshold=float(threshold))
        self._config["criteria"] = self.criteria
        if self._threads:
            # Rendezvous: every thread flushes its ingest buffer and
            # acks over the result queue (the master keeps draining, so
            # a full queue cannot deadlock the barrier), the master
            # applies the retarget once on the shared filter, then
            # releases the threads.  No chunk flush straddles the swap.
            sync_id = self._sync_id
            self._sync_id += 1
            release = threading.Event()
            for shard_id in range(self.num_shards):
                self._put(shard_id, ("retarget", sync_id, release))
            deadline = time.monotonic() + self.stall_timeout
            try:
                while len(self._barrier_acks.get(sync_id, ())) < self.num_shards:
                    if self._drain(block=True):
                        deadline = time.monotonic() + self.stall_timeout
                    else:
                        self._check_workers()
                        if time.monotonic() > deadline:
                            self._fail(
                                PipelineStallError(
                                    f"retarget sync {sync_id} incomplete "
                                    f"after {self.stall_timeout}s"
                                )
                            )
                self._barrier_acks.pop(sync_id, None)
                self.filter.retarget(float(threshold))
            finally:
                release.set()
        else:
            for shard_id in range(self.num_shards):
                self._put(shard_id, ("retarget", float(threshold)))
        self._retargets_counter.inc()
        LOGGER.info(
            "threshold retargeted",
            extra={
                "event": "retarget",
                "threshold": float(threshold),
                "items_fed": self.items_fed,
            },
        )
        return self.criteria

    def finish(self) -> PipelineResult:
        """Stop the workers, drain all results, and join cleanly."""
        if self._finished:
            raise PipelineError("pipeline already finished")
        if not self._started:
            raise PipelineError("pipeline was never started")
        start_wall = time.perf_counter()
        try:
            merged = None
            if self.collect_merged:
                merged = self._collect_merged_view()
            for shard_id in range(self.num_shards):
                self._put(shard_id, ("stop",))
            collect_start = (
                time.perf_counter() if self.tracer is not None else 0.0
            )
            deadline = time.monotonic() + self.stall_timeout
            while len(self._done) < self.num_shards:
                if not self._drain(block=True):
                    self._check_workers()
                    if time.monotonic() > deadline:
                        raise PipelineStallError(
                            f"workers did not finish within "
                            f"{self.stall_timeout}s "
                            f"({len(self._done)}/{self.num_shards} done)"
                        )
                else:
                    deadline = time.monotonic() + self.stall_timeout
            self._drain(block=False)  # late stragglers (per-worker FIFO)
            self._release_ready(flush=True)
            for worker in self.workers:
                worker.join(timeout=self.stall_timeout)
            if self.tracer is not None:
                self.tracer.add_span(
                    "pipeline_collect", collect_start, time.perf_counter(),
                    args={"shards": self.num_shards},
                )
            per_items = [self._done[s][0] for s in range(self.num_shards)]
            per_reports = [self._done[s][1] for s in range(self.num_shards)]
            per_stats = aggregate = None
            if self.collect_stats:
                if self._threads:
                    per_stats = [self._filter_registry.snapshot()]
                else:
                    per_stats = [
                        self._done[s][2] for s in range(self.num_shards)
                    ]
                aggregate = self._aggregate_worker_stats(per_stats)
            trace_events = None
            if self.tracer is not None:
                for shard_id in range(self.num_shards):
                    self.tracer.extend(self._done[shard_id][3] or [])
                trace_events = self.tracer.chrome_events()
            report_records = None
            if self.collect_provenance:
                report_records = []
                for shard_id in range(self.num_shards):
                    report_records.extend(self._done[shard_id][4] or [])
            result = PipelineResult(
                reported_keys=set(self._reported),
                items=self.items_fed,
                seconds=time.perf_counter() - start_wall,
                num_shards=self.num_shards,
                mode=self.mode,
                chunks=self._chunk_id,
                per_shard_items=per_items,
                per_shard_reports=per_reports,
                batches=list(self._batches),
                merged=merged if merged is not None else self.last_merged,
                stats=aggregate,
                per_shard_stats=per_stats,
                trace_events=trace_events,
                report_records=report_records,
            )
            self._finished = True
            LOGGER.info(
                "pipeline finished",
                extra={
                    "event": "finish",
                    "items": result.items,
                    "chunks": result.chunks,
                    "reported_keys": len(result.reported_keys),
                    "seconds": round(result.seconds, 6),
                    "trace_events": (
                        len(trace_events) if trace_events is not None else 0
                    ),
                    "report_records": (
                        len(report_records)
                        if report_records is not None else 0
                    ),
                },
            )
            return result
        finally:
            self.close()

    def run(self, keys: np.ndarray, values: np.ndarray) -> PipelineResult:
        """One-shot convenience: start, feed everything, finish.

        ``result.seconds`` covers the whole run including worker
        start-up and shutdown — the honest parallel-throughput number.
        """
        start_wall = time.perf_counter()
        try:
            self.start()
            self.feed(keys, values)
            result = self.finish()
        finally:
            self.close()
        result.seconds = time.perf_counter() - start_wall
        return result

    def close(self) -> None:
        """Terminate any still-running workers and release the queues.

        Safe to call multiple times and from error paths; after a clean
        :meth:`finish` it only reaps already-exited processes.
        """
        if self._threads:
            # Daemon threads cannot be terminated; nudge any that are
            # still parked on their queue with a stop and give them a
            # moment — after a clean finish they are already gone.
            for in_queue in self._in_queues:
                try:
                    in_queue.put_nowait(("stop",))
                except queue_module.Full:  # pragma: no cover - stalled
                    pass
            for worker in self.workers:
                if worker.is_alive():
                    worker.join(timeout=1.0)
            self._in_queues = []
            self._out_queue = None
            return
        for worker in self.workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self.workers:
            if worker.is_alive():
                worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - last resort
                worker.kill()
                worker.join(timeout=5.0)
        for in_queue in self._in_queues:
            in_queue.cancel_join_thread()
            in_queue.close()
        if self._out_queue is not None:
            self._out_queue.cancel_join_thread()
            self._out_queue.close()
        if self._rings is not None:
            # Workers are gone (terminated/joined above): unmap and
            # destroy the shared blocks — the master owns both steps.
            for ring in self._rings:
                ring.close()
                ring.unlink()
            self._rings = None
            self._free_slots = []
        self._in_queues = []
        self._out_queue = None

    @property
    def reported_keys(self) -> Set:
        """Copy of the distinct keys reported across all shards so far."""
        return set(self._reported)

    @property
    def running(self) -> bool:
        """Whether the pipeline is between :meth:`start` and :meth:`finish`."""
        return self._started and not self._finished
        self._started = False

    # ------------------------------------------------------------------
    # master-side plumbing
    # ------------------------------------------------------------------
    def _put(self, shard_id: int, message) -> None:
        """Bounded put with result draining and liveness checks.

        Draining while blocked on a full input queue is what prevents
        the classic feeder/collector deadlock: the worker may itself be
        blocked putting results into the bounded result queue.
        """
        deadline = time.monotonic() + self.stall_timeout
        while True:
            try:
                self._in_queues[shard_id].put(message, timeout=0.1)
                return
            except queue_module.Full:
                if self._drain(block=False):
                    deadline = time.monotonic() + self.stall_timeout
                self._check_workers()
                if time.monotonic() > deadline:
                    self._fail(
                        PipelineStallError(
                            f"shard {shard_id} accepted no work for "
                            f"{self.stall_timeout}s"
                        )
                    )

    def _acquire_slot(self, shard_id: int) -> int:
        """Pop a free shm slot for ``shard_id``, draining acks while dry.

        Mirrors :meth:`_put`'s anti-deadlock shape: slot credits come
        back on the result queue, so blocking here without draining
        would deadlock against a worker blocked on that same queue.
        """
        free = self._free_slots[shard_id]
        deadline = time.monotonic() + self.stall_timeout
        while not free:
            if self._drain(block=True):
                deadline = time.monotonic() + self.stall_timeout
            else:
                self._check_workers()
                if time.monotonic() > deadline:
                    self._fail(
                        PipelineStallError(
                            f"shard {shard_id} returned no shm slot for "
                            f"{self.stall_timeout}s"
                        )
                    )
        return free.pop()

    def _drain(self, block: bool) -> bool:
        """Move every available result message into master state.

        Returns True when at least one message was consumed.
        """
        consumed = False
        while True:
            try:
                message = self._out_queue.get(timeout=0.1 if block else 0.0)
            except queue_module.Empty:
                return consumed
            consumed = True
            block = False  # only block for the first message
            kind = message[0]
            if kind == "reports":
                _, chunk_id, shard_id, keys, posted_at, slot_id = message
                if slot_id >= 0 and self._rings is not None:
                    self._free_slots[shard_id].append(slot_id)
                self._queue_delay_hist.record(
                    max(0.0, time.perf_counter() - posted_at)
                )
                self._reported.update(keys)
                self._pending.setdefault(chunk_id, []).append(
                    ReportBatch(chunk_id=chunk_id, shard_id=shard_id, keys=keys)
                )
                self._acks[chunk_id] = self._acks.get(chunk_id, 0) + 1
                self._release_ready()
            elif kind == "snapshot":
                _, sync_id, shard_id, snapshot = message
                self._snapshots.setdefault(sync_id, []).append(snapshot)
            elif kind == "barrier":
                _, sync_id, shard_id = message
                self._barrier_acks.setdefault(sync_id, set()).add(shard_id)
            elif kind == "stats":
                _, sync_id, shard_id, stats_snap = message
                self._stat_views.setdefault(sync_id, {})[shard_id] = stats_snap
            elif kind == "dump":
                _, sync_id, shard_id, path = message
                self._dump_acks.setdefault(sync_id, {})[shard_id] = path
            elif kind == "done":
                (_, shard_id, items, reports, stats_snap, trace_events,
                 report_records) = message
                self._done[shard_id] = (
                    items, reports, stats_snap, trace_events, report_records
                )
            elif kind == "error":
                _, shard_id, tb_text = message
                LOGGER.error(
                    "worker raised",
                    extra={"event": "worker_error", "shard": shard_id},
                )
                self._fail(
                    WorkerFailedError(
                        f"shard {shard_id} worker raised:\n{tb_text}"
                    )
                )

    def _release_ready(self, flush: bool = False) -> None:
        """Hand completed batches to the callback / result list.

        Unordered mode releases immediately; ordered mode releases a
        chunk only when all shards have acked it, in chunk order.
        """
        if self.mode == "unordered":
            for chunk_id in sorted(self._pending):
                for batch in self._pending.pop(chunk_id):
                    self._emit(batch)
            return
        while self._next_release in self._acks and (
            self._acks[self._next_release] == self.num_shards
        ):
            batches = self._pending.pop(self._next_release, [])
            for batch in sorted(batches, key=lambda b: b.shard_id):
                self._emit(batch)
            del self._acks[self._next_release]
            self._next_release += 1
        if flush:
            for chunk_id in sorted(self._pending):
                for batch in sorted(
                    self._pending.pop(chunk_id), key=lambda b: b.shard_id
                ):
                    self._emit(batch)

    def _emit(self, batch: ReportBatch) -> None:
        self._batches.append(batch)
        self._batches_counter.inc()
        if self._on_reports is not None:
            self._on_reports(batch)

    def _collect_merged_view(self) -> QuantileFilter:
        """Request shard snapshots and merge them into one global filter."""
        if self._threads:
            # The shared filter already IS the global view; snapshot it
            # consistently (all stripe locks + vague lock) and convert
            # to the mergeable scalar form the process path returns.
            merged = batch_filter_to_scalar(self.filter.as_batch())
            self.last_merged = merged
            self._merges_counter.inc()
            LOGGER.info(
                "merged global view collected",
                extra={
                    "event": "merge_view",
                    "sync": self._sync_id,
                    "items_fed": self.items_fed,
                },
            )
            if self._on_merge is not None:
                self._on_merge(merged, self.items_fed)
            return merged
        merge_start = time.perf_counter() if self.tracer is not None else 0.0
        sync_id = self._sync_id
        self._sync_id += 1
        for shard_id in range(self.num_shards):
            self._put(shard_id, ("snapshot", sync_id))
        deadline = time.monotonic() + self.stall_timeout
        while len(self._snapshots.get(sync_id, [])) < self.num_shards:
            if self._drain(block=True):
                deadline = time.monotonic() + self.stall_timeout
            else:
                self._check_workers()
                if time.monotonic() > deadline:
                    self._fail(
                        PipelineStallError(
                            f"snapshot sync {sync_id} incomplete after "
                            f"{self.stall_timeout}s"
                        )
                    )
        snapshots = self._snapshots.pop(sync_id)
        self._merges_counter.inc()
        merged = QuantileFilter(
            self.criteria,
            num_buckets=self._config["num_buckets"],
            vague_width=self._config["vague_width"],
            bucket_size=self._config["bucket_size"],
            depth=self._config["depth"],
            fp_bits=self._config["fp_bits"],
            counter_kind="float",
            strategy=self._config["strategy"],
            seed=self._config["seed"],
        )
        for snapshot in snapshots:
            merged.merge(snapshot)
        self.last_merged = merged
        if self.tracer is not None:
            self.tracer.add_span(
                "pipeline_merge", merge_start, time.perf_counter(),
                args={"sync": sync_id, "items_fed": self.items_fed},
            )
        LOGGER.info(
            "merged global view collected",
            extra={
                "event": "merge_view",
                "sync": sync_id,
                "items_fed": self.items_fed,
            },
        )
        if self._on_merge is not None:
            self._on_merge(merged, self.items_fed)
        return merged

    def collect_stats_view(self) -> Dict[str, float]:
        """Pull a live telemetry view from every worker registry.

        Like :meth:`_collect_merged_view`, the request rides each
        worker's input queue, so every per-shard snapshot is a
        consistent between-chunks cut.  Returns the aggregate snapshot
        (worker samples combined per their aggregation rules, overlaid
        with the master's ``pipeline_*`` samples); also kept as
        :attr:`last_stats`.  Requires ``collect_stats=True``.
        """
        if not self.collect_stats:
            raise PipelineError(
                "pipeline was built without collect_stats=True; worker "
                "registries are not recording"
            )
        if not self._started:
            raise PipelineError("pipeline is not running")
        if self._threads:
            # One registry observes the one shared filter; scrapes are
            # seqlock reads, so no worker round-trip is needed.
            self._stat_views_counter.inc()
            return self._aggregate_worker_stats(
                [self._filter_registry.snapshot()]
            )
        sync_id = self._sync_id
        self._sync_id += 1
        for shard_id in range(self.num_shards):
            self._put(shard_id, ("stats", sync_id))
        deadline = time.monotonic() + self.stall_timeout
        while len(self._stat_views.get(sync_id, {})) < self.num_shards:
            if self._drain(block=True):
                deadline = time.monotonic() + self.stall_timeout
            else:
                self._check_workers()
                if time.monotonic() > deadline:
                    self._fail(
                        PipelineStallError(
                            f"stats sync {sync_id} incomplete after "
                            f"{self.stall_timeout}s"
                        )
                    )
        views = self._stat_views.pop(sync_id)
        self._stat_views_counter.inc()
        return self._aggregate_worker_stats(
            [views[s] for s in range(self.num_shards)]
        )

    def request_incident_dump(self, reason: str) -> List[str]:
        """Ask every recording shard worker for an incident bundle.

        The request rides each worker's chunk FIFO (like the stats and
        snapshot syncs), so every shard dumps a consistent
        between-chunks cut of its recorder window into
        ``incident_dir/shard-<id>/``.  Returns the bundle paths, in
        shard order.

        A no-op returning ``[]`` when the pipeline was built without
        ``record=True`` or runs the thread engine (which has no
        per-shard recorders) — callers such as the alert engine's
        trigger hook need not special-case either configuration.
        """
        if not self._started:
            raise PipelineError("pipeline is not running")
        if self._threads or not self.record:
            return []
        sync_id = self._sync_id
        self._sync_id += 1
        for shard_id in range(self.num_shards):
            self._put(shard_id, ("dump", sync_id, str(reason)))
        deadline = time.monotonic() + self.stall_timeout
        while len(self._dump_acks.get(sync_id, {})) < self.num_shards:
            if self._drain(block=True):
                deadline = time.monotonic() + self.stall_timeout
            else:
                self._check_workers()
                if time.monotonic() > deadline:
                    self._fail(
                        PipelineStallError(
                            f"dump sync {sync_id} incomplete after "
                            f"{self.stall_timeout}s"
                        )
                    )
        acks = self._dump_acks.pop(sync_id)
        return [
            acks[shard] for shard in sorted(acks)
            if acks[shard] is not None
        ]

    def _aggregate_worker_stats(
        self, per_shard: List[Dict[str, float]]
    ) -> Dict[str, float]:
        aggregate = aggregate_snapshots(per_shard)
        aggregate.update(self.stats.snapshot())
        self.last_stats = aggregate
        self.last_per_shard_stats = [dict(view) for view in per_shard]
        return aggregate

    def _check_workers(self) -> None:
        """Raise (after cleanup) when any unfinished worker is dead."""
        for shard_id, worker in enumerate(self.workers):
            if shard_id in self._done or worker.is_alive():
                continue
            # One last drain: the worker may have parked an error or its
            # done message in the result queue just before exiting.
            self._drain(block=False)
            if shard_id in self._done:
                continue
            if self._threads:
                self._fail(
                    WorkerCrashError(
                        f"updater thread {shard_id} died before finishing"
                    )
                )
            self._fail(
                WorkerCrashError(
                    f"shard {shard_id} worker (pid {worker.pid}) died with "
                    f"exitcode {worker.exitcode} before finishing"
                )
            )

    def _fail(self, error: PipelineError) -> None:
        LOGGER.error(
            "pipeline failing",
            extra={
                "event": "fail",
                "error_type": type(error).__name__,
            },
        )
        self.close()
        raise error
