"""Zero-copy shared-memory chunk transport for the parallel pipeline.

The default queue transport pickles every ``(keys, values)`` ndarray
pair into the worker's ``multiprocessing.Queue`` — one serialize, one
pipe write, one deserialize per chunk per shard.  At pipeline chunk
rates that serialization is pure overhead: the arrays are plain
fixed-width numbers that both sides could read in place.

:class:`ShmSlotRing` removes it.  Each worker gets one
``multiprocessing.shared_memory`` block carved into ``num_slots``
fixed-size chunk slots (an ``int64`` key plane followed by a
``float64`` value plane).  The master copies a chunk slice into a free
slot once; the queue then carries only a tiny ``("chunk_shm",
chunk_id, slot_id, length)`` descriptor, and the worker maps the slot
as numpy views without copying anything.  Slot reuse is credit-based:
a slot stays owned by the in-flight chunk until the worker's report
acknowledgement for that chunk returns the ``slot_id`` to the master's
free list, so a ring of ``queue_capacity + 2`` slots can never be
overwritten while a worker still reads it.

Lifecycle: the master creates and ultimately unlinks every block;
workers attach by name and must *not* register the segment with their
own :mod:`multiprocessing.resource_tracker` (Python registers attached
segments too, which would unlink the master's block when the first
worker exits — see :meth:`ShmSlotRing.attach`).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Tuple

import numpy as np

from repro.common.errors import ParameterError

#: Bytes per stream item in a slot: one int64 key + one float64 value.
BYTES_PER_ITEM = 16


class ShmSlotRing:
    """A ring of fixed-size ``(keys, values)`` chunk slots in shared memory.

    Layout of the backing block::

        [ keys plane:   num_slots x slot_items  int64   ]
        [ values plane: num_slots x slot_items  float64 ]

    The master constructs with :meth:`create` and hands workers the
    block ``name``; workers construct with :meth:`attach`.  Slot
    scheduling (which slot is free) is the caller's job — the ring is
    just the memory.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        num_slots: int,
        slot_items: int,
        owner: bool,
    ):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self.num_slots = num_slots
        self.slot_items = slot_items
        self.name = shm.name
        plane = num_slots * slot_items * 8
        self._keys = np.ndarray(
            (num_slots, slot_items), dtype=np.int64, buffer=shm.buf[:plane]
        )
        self._values = np.ndarray(
            (num_slots, slot_items),
            dtype=np.float64,
            buffer=shm.buf[plane:2 * plane],
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, num_slots: int, slot_items: int) -> "ShmSlotRing":
        """Master side: allocate a fresh block (caller unlinks it)."""
        if num_slots < 1:
            raise ParameterError(f"num_slots must be >= 1, got {num_slots}")
        if slot_items < 1:
            raise ParameterError(f"slot_items must be >= 1, got {slot_items}")
        shm = shared_memory.SharedMemory(
            create=True, size=num_slots * slot_items * BYTES_PER_ITEM
        )
        return cls(shm, num_slots, slot_items, owner=True)

    @classmethod
    def attach(
        cls,
        name: str,
        num_slots: int,
        slot_items: int,
        untrack: bool = False,
    ) -> "ShmSlotRing":
        """Worker side: map an existing block by name.

        Python's :class:`~multiprocessing.shared_memory.SharedMemory`
        registers even *attached* segments with the resource tracker.
        ``multiprocessing`` children share the creator's tracker (the
        tracker fd is inherited on fork and shipped in the spawn
        preparation data), so for pipeline workers the duplicate
        registration is harmless and ``untrack`` must stay False —
        untracking would erase the master's claim.  Pass
        ``untrack=True`` only from *unrelated* processes with their own
        tracker, whose exit would otherwise unlink the master-owned
        block.
        """
        shm = shared_memory.SharedMemory(name=name)
        if untrack:
            try:  # pragma: no cover - tracker internals vary per platform
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, num_slots, slot_items, owner=False)

    # ------------------------------------------------------------------
    # slot I/O
    # ------------------------------------------------------------------
    def write(self, slot_id: int, keys: np.ndarray, values: np.ndarray) -> int:
        """Copy a chunk slice into ``slot_id``; returns the item count."""
        n = int(keys.shape[0])
        if n > self.slot_items:
            raise ParameterError(
                f"chunk of {n} items exceeds slot capacity {self.slot_items}"
            )
        self._keys[slot_id, :n] = keys
        self._values[slot_id, :n] = values
        return n

    def read(self, slot_id: int, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of the first ``length`` items of ``slot_id``."""
        return (
            self._keys[slot_id, :length],
            self._values[slot_id, :length],
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the backing shared block."""
        return self.num_slots * self.slot_items * BYTES_PER_ITEM

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent).

        Pipeline shutdown can reach here twice — an explicit
        ``pipeline.close()`` and the master's atexit sweep — so a
        latch makes the second call a strict no-op instead of
        re-running the teardown against an already-released mapping.
        """
        if self._closed:
            return
        self._closed = True
        # The numpy planes hold exported pointers into shm.buf; release
        # them first or SharedMemory.close() raises BufferError.
        self._keys = None
        self._values = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering external view
            pass

    def unlink(self) -> None:
        """Destroy the block (master only; harmless if already gone).

        Idempotent like :meth:`close`, and valid in any order with it:
        ``SharedMemory.unlink`` works by name, not by mapping, so
        ``close()`` first is fine, and a block someone else already
        unlinked is treated as gone rather than an error.
        """
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close paths
            pass
