"""Bucket-affine sharding of QuantileFilter across N independent shards.

A :class:`ShardedQuantileFilter` hash-partitions the key space across
``num_shards`` shard filters, each a full-geometry
:class:`~repro.core.quantile_filter.QuantileFilter` (or
:class:`~repro.core.vectorized.BatchQuantileFilter`) built with the
**same dimensions and seed**.  The partition follows the filter's own
addressing: a key's shard is its candidate bucket modulo the shard
count (:class:`ShardRouter`).  Because candidate-part interactions are
bucket-local, a bucket's entire key population always lands on one
shard, which gives the sharded composition a crisp consistency model:

* **No-overflow regime** — while the reference single filter never
  spills into its vague part, every report decision depends only on the
  key's own ``(bucket, fingerprint)`` state, so the sharded filter
  reports *exactly* the same key set, item-for-item, for any shard
  count (``tests/parallel/test_shard_equivalence.py``).
* **Contention regime** — once buckets overflow, the single filter's
  vague part mixes keys from different buckets; shards keep private
  vague parts, so sharding strictly *reduces* cross-key collision
  noise.  Each shard remains a faithful QuantileFilter over its key
  slice; reports may differ from the single filter's only through
  sketch noise.

Shard state is mergeable: all shards share hash families (same seed),
so :meth:`ShardedQuantileFilter.merged` folds them into one global
filter via :meth:`QuantileFilter.merge` — the aggregation path the
:mod:`repro.parallel.pipeline` uses for periodic global views.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.common.errors import ParameterError
from repro.common.hashing import _mix64_array, canonical_key, canonical_keys, mix64
from repro.core.criteria import Criteria
from repro.core.quantile_filter import DEFAULT_CANDIDATE_FRACTION, QuantileFilter, Report
from repro.core.vectorized import BatchQuantileFilter

#: Engines a shard can run.
ENGINES = ("scalar", "batch")

#: XOR constant of the candidate-bucket hash; must match
#: ``QuantileFilter.__init__`` and ``BatchQuantileFilter.__init__`` so
#: the router and the shard filters agree on every key's bucket.
_BUCKET_SEED_XOR = 0x1234_5678_9ABC_DEF0


class ShardRouter:
    """Deterministic key -> shard assignment, affine to candidate buckets.

    The router computes a key's candidate bucket with the exact same
    derivation the filters use (``mix64(canonical_key ^ bucket_seed) %
    num_buckets``) and assigns ``shard = bucket % num_shards``.  Keys
    that would ever interact inside a candidate bucket therefore always
    share a shard — including fingerprint-colliding keys.
    """

    __slots__ = ("num_shards", "num_buckets", "_bucket_seed")

    def __init__(self, num_shards: int, num_buckets: int, seed: int = 0):
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        if num_buckets < 1:
            raise ParameterError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_shards = num_shards
        self.num_buckets = num_buckets
        self._bucket_seed = mix64(seed ^ _BUCKET_SEED_XOR)

    def bucket_of(self, key: Hashable) -> int:
        """Candidate bucket of ``key`` (same value the filters compute)."""
        return mix64(canonical_key(key) ^ self._bucket_seed) % self.num_buckets

    def shard_of(self, key: Hashable) -> int:
        """Owning shard of ``key``."""
        return self.bucket_of(key) % self.num_shards

    def shard_ids_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of` over an integer key array."""
        canon = canonical_keys(keys)
        buckets = _mix64_array(canon ^ np.uint64(self._bucket_seed)) % np.uint64(
            self.num_buckets
        )
        return (buckets % np.uint64(self.num_shards)).astype(np.int64)

    def split(
        self, keys: np.ndarray, values: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Partition a chunk into per-shard ``(keys, values)`` slices.

        Relative stream order is preserved inside each slice, which is
        all that matters: shards share no state, so cross-shard
        interleaving cannot affect any outcome.
        """
        shard_ids = self.shard_ids_batch(keys)
        out = []
        for shard in range(self.num_shards):
            mask = shard_ids == shard
            out.append((keys[mask], values[mask]))
        return out


class ShardedQuantileFilter:
    """N independent shard filters behind one filter-shaped façade.

    Parameters mirror :class:`~repro.core.quantile_filter.QuantileFilter`
    — geometry parameters are **per shard** and every shard gets the
    same seed (required both for routing coherence and for
    :meth:`merged`).  ``memory_bytes`` is likewise a per-shard budget.

    Parameters
    ----------
    criteria:
        Default criteria shared by every shard.
    num_shards:
        Shard count (>= 1).
    engine:
        ``"scalar"`` (general keys, full API) or ``"batch"`` (integer
        keys, :meth:`process` only, numpy-accelerated).
    on_report:
        Optional callback receiving every :class:`Report` with a
        *global* item index (scalar engine only).
    """

    def __init__(
        self,
        criteria: Criteria,
        num_shards: int,
        *,
        engine: str = "scalar",
        memory_bytes: Optional[int] = None,
        num_buckets: Optional[int] = None,
        vague_width: Optional[int] = None,
        bucket_size: int = 6,
        depth: int = 3,
        candidate_fraction: float = DEFAULT_CANDIDATE_FRACTION,
        fp_bits: int = 16,
        counter_kind: str = "int32",
        vague_backend: str = "cs",
        strategy: str = "comparative",
        seed: int = 0,
        chunk_size: int = 65536,
        track_reports: bool = True,
        on_report=None,
    ):
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        if engine not in ENGINES:
            raise ParameterError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        if engine == "batch" and vague_backend != "cs":
            raise ParameterError(
                "the batch engine only supports the 'cs' vague backend"
            )
        self.criteria = criteria
        self.engine = engine
        self.num_shards = num_shards
        self.seed = seed
        self._on_report = on_report
        self.shards: List = []
        for _ in range(num_shards):
            if engine == "scalar":
                shard = QuantileFilter(
                    criteria,
                    memory_bytes,
                    num_buckets=num_buckets,
                    vague_width=vague_width,
                    bucket_size=bucket_size,
                    depth=depth,
                    candidate_fraction=candidate_fraction,
                    fp_bits=fp_bits,
                    counter_kind=counter_kind,
                    vague_backend=vague_backend,
                    strategy=strategy,
                    seed=seed,
                    track_reports=track_reports,
                )
            else:
                shard = BatchQuantileFilter(
                    criteria,
                    memory_bytes,
                    num_buckets=num_buckets,
                    vague_width=vague_width,
                    bucket_size=bucket_size,
                    depth=depth,
                    candidate_fraction=candidate_fraction,
                    fp_bits=fp_bits,
                    strategy=strategy,
                    seed=seed,
                    chunk_size=chunk_size,
                )
            self.shards.append(shard)
        resolved_buckets = (
            self.shards[0].candidate.num_buckets
            if engine == "scalar"
            else self.shards[0].num_buckets
        )
        self.router = ShardRouter(num_shards, resolved_buckets, seed=seed)
        self.items_processed = 0

    # ------------------------------------------------------------------
    # the online path
    # ------------------------------------------------------------------
    def insert(
        self, key: Hashable, value: float, criteria: Optional[Criteria] = None
    ) -> Optional[Report]:
        """Route one item to its owning shard (scalar engine only).

        The returned report's ``item_index`` is the *global* position in
        the sharded stream, not the shard-local one.
        """
        self._require_scalar("insert")
        global_index = self.items_processed
        self.items_processed += 1
        shard = self.shards[self.router.shard_of(key)]
        report = shard.insert(key, value, criteria=criteria)
        if report is None:
            return None
        report = replace(report, item_index=global_index)
        if self._on_report is not None:
            self._on_report(report)
        return report

    def process(self, keys: np.ndarray, values: np.ndarray) -> Set:
        """Partition a whole stream and run every shard over its slice.

        Works with both engines; returns the union of reported keys.
        """
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.shape[0] != values.shape[0]:
            raise ParameterError(
                f"keys and values length mismatch: {keys.shape[0]} vs "
                f"{values.shape[0]}"
            )
        for shard, (sub_keys, sub_values) in zip(
            self.shards, self.router.split(keys, values)
        ):
            if sub_keys.shape[0] == 0:
                continue
            if self.engine == "batch":
                shard.process(sub_keys, sub_values)
            else:
                for key, value in zip(sub_keys.tolist(), sub_values.tolist()):
                    shard.insert(key, value)
        self.items_processed += int(keys.shape[0])
        return self.reported_keys

    # ------------------------------------------------------------------
    # routed per-key operations (scalar engine)
    # ------------------------------------------------------------------
    def query(self, key: Hashable) -> float:
        """Current Qweight estimate of ``key`` on its owning shard."""
        self._require_scalar("query")
        return self.shards[self.router.shard_of(key)].query(key)

    def delete(self, key: Hashable) -> None:
        """Clear ``key``'s Qweight on its owning shard."""
        self._require_scalar("delete")
        self.shards[self.router.shard_of(key)].delete(key)

    def set_key_criteria(self, key: Hashable, criteria: Criteria) -> None:
        """Register standing per-key criteria on the owning shard."""
        self._require_scalar("set_key_criteria")
        self.shards[self.router.shard_of(key)].set_key_criteria(key, criteria)

    def modify_criteria(self, key: Hashable, criteria: Criteria) -> None:
        """Change ``key``'s criteria mid-stream on the owning shard."""
        self._require_scalar("modify_criteria")
        self.shards[self.router.shard_of(key)].modify_criteria(key, criteria)

    def clear_key_criteria(self, key: Hashable) -> None:
        """Drop ``key``'s override on the owning shard."""
        self._require_scalar("clear_key_criteria")
        self.shards[self.router.shard_of(key)].clear_key_criteria(key)

    def retarget(self, threshold: float) -> Criteria:
        """Broadcast a value-threshold change to every shard.

        Works on both engines (retargeting is a criteria swap, not a
        structural operation).  All shards move together, so the merge
        path's criteria-equality check keeps holding.  Returns the new
        shared criteria.
        """
        self.criteria = self.criteria.with_updates(threshold=float(threshold))
        for shard in self.shards:
            shard.retarget(threshold)
        return self.criteria

    @property
    def retargets(self) -> int:
        """Retargets applied (every broadcast touches every shard once)."""
        return self.shards[0].retargets if self.shards else 0

    def reset(self) -> None:
        """Clear every shard's structure (periodic reset)."""
        if self.engine == "scalar":
            for shard in self.shards:
                shard.reset()
        else:
            for shard in self.shards:
                shard._cand_fps[...] = 0
                shard._cand_qws[...] = 0.0
                shard._rows = [[0.0] * shard.width for _ in range(shard.depth)]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def merged(self) -> QuantileFilter:
        """One global QuantileFilter equal to the merge of every shard.

        Shards are untouched; the returned filter is a fresh structure
        built by folding shard snapshots together with
        :meth:`QuantileFilter.merge` (shards share hash families, so
        their cells correspond).  Batch shards are first converted to
        scalar filters with ``counter_kind="float"``.
        """
        snapshots = [self._scalar_snapshot(shard) for shard in self.shards]
        merged = self._empty_scalar_like(snapshots[0])
        for snapshot in snapshots:
            merged.merge(snapshot)
        return merged

    def _scalar_snapshot(self, shard) -> QuantileFilter:
        if self.engine == "scalar":
            return shard
        return batch_filter_to_scalar(shard)

    def _empty_scalar_like(self, template: QuantileFilter) -> QuantileFilter:
        return QuantileFilter(
            template.criteria,
            num_buckets=template.candidate.num_buckets,
            vague_width=template.vague.width,
            bucket_size=template.candidate.bucket_size,
            depth=template.vague.depth,
            fp_bits=template.candidate.fp_bits,
            counter_kind=template.vague.sketch.counters.kind,
            vague_backend=template.vague.backend,
            strategy=template.strategy.name,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def reported_keys(self) -> Set:
        """Union of every shard's deduplicated reported keys."""
        out: Set = set()
        for shard in self.shards:
            out |= shard.reported_keys
        return out

    @property
    def report_count(self) -> int:
        """Total reports emitted across all shards."""
        return sum(shard.report_count for shard in self.shards)

    @property
    def nbytes(self) -> int:
        """Modelled footprint: sum of the shard structures."""
        return sum(shard.nbytes for shard in self.shards)

    def shard_items(self) -> List[int]:
        """Items processed per shard (load-balance diagnostics)."""
        return [shard.items_processed for shard in self.shards]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedQuantileFilter(num_shards={self.num_shards}, "
            f"engine={self.engine!r}, nbytes={self.nbytes})"
        )

    def _require_scalar(self, operation: str) -> None:
        if self.engine != "scalar":
            raise ParameterError(
                f"{operation}() requires engine='scalar'; the batch engine "
                "only supports process(keys, values)"
            )


def batch_filter_to_scalar(batch: BatchQuantileFilter) -> QuantileFilter:
    """Materialise a BatchQuantileFilter's state as a scalar filter.

    The scalar twin is built with ``counter_kind="float"`` and the same
    seed, so its hash families address the same cells; candidate
    entries, vague counters and report history are copied verbatim.
    The result is mergeable with any identically-configured filter —
    this is how batch-engine shards join the
    :meth:`QuantileFilter.merge` aggregation path.
    """
    scalar = QuantileFilter(
        batch.criteria,
        num_buckets=batch.num_buckets,
        vague_width=batch.width,
        bucket_size=batch.bucket_size,
        depth=batch.depth,
        fp_bits=batch.fp_bits,
        counter_kind="float",
        vague_backend="cs",
        strategy=batch.strategy.name,
        seed=batch.seed,
    )
    scalar.candidate._fps[...] = np.asarray(batch._cand_fps, dtype=np.uint64)
    scalar.candidate._qws[...] = np.asarray(batch._cand_qws, dtype=np.float64)
    scalar.vague.sketch.counters.data = np.asarray(
        batch._rows, dtype=scalar.vague.sketch.counters.data.dtype
    )
    scalar.reported_keys = set(batch.reported_keys)
    scalar.items_processed = batch.items_processed
    scalar.report_count = batch.report_count
    scalar.candidate_hits = batch.candidate_hits
    scalar.vague_inserts = batch.vague_inserts
    scalar.swaps = batch.swaps
    scalar.candidate_reports = batch.candidate_reports
    scalar.vague_reports = batch.vague_reports
    scalar.retargets = batch.retargets
    return scalar


def sharded_reported_union(shards: Sequence) -> Set:
    """Union of ``reported_keys`` over any shard collection."""
    out: Set = set()
    for shard in shards:
        out |= shard.reported_keys
    return out
