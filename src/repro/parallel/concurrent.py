"""Thread-parallel shared-sketch QuantileFilter (Quancurrent direction).

The process pipeline (:mod:`repro.parallel.pipeline`) buys parallelism
by giving every shard a private filter in a private process — and pays
a serialization/transport tax on every chunk to get data there.  This
module takes the opposite trade, following *Quancurrent: A Concurrent
Quantiles Sketch* (PAPERS.md): **one** shared set of numpy candidate /
vague planes, updated by N threads in the same address space, with
thread-local ingest buffers batching items between commits (the
KLL-style buffer-flush-merge shape: local accumulation, bulk merge into
the shared structure).

Concurrency design
==================

* **Thread-local ingest** (:class:`ThreadIngest`) — each updater thread
  appends into a private buffer; at ``flush_items`` it flushes.  No
  shared state is touched per item, only per flush.
* **Striped bucket-range locks** — the candidate planes are partitioned
  into ``num_stripes`` stripes by ``bucket % num_stripes``.  A flush
  stripe-sorts its buffer (stable, so per-bucket stream order is
  preserved), then commits each stripe's sub-chunk through the batch
  engine's two-tier pass (:meth:`~repro.core.vectorized.
  BatchQuantileFilter._classify_chunk` + the fast/scalar passes) while
  holding only that stripe's lock.  Threads touching disjoint stripes
  commit concurrently; only sub-chunks with risky/crossing or
  vague-bound items additionally serialize on the single vague lock
  (lock order is always stripe -> vague, so no deadlock is possible).
* **Seqlock read path** — each stripe carries a sequence counter that
  is odd while a commit mutates it.  Readers (:meth:`query`, the stats
  snapshot helpers) read optimistically and retry on a seqlock change,
  falling back to taking the lock after a few spins, so scrapes never
  block inserts.
* **Per-stripe sinks** (:class:`StripeSink`) — reports and event
  tallies land in per-stripe accumulators (mutated only under the
  stripe's lock), because racing ``int +=`` on one shared filter
  attribute would drop updates.  A key's bucket owns it, so the union
  of sink report sets is exactly the deduplicated global report set.

Equivalence model (pinned by ``tests/properties/
test_property_concurrent_equivalence.py``)
==========================================

* *Single ingest*: one thread flushing through the striped path is
  **bit-identical** to :class:`~repro.core.vectorized.
  BatchQuantileFilter` processing the same stream with each flush
  buffer stably stripe-sorted — the stripe sort is the only reordering
  the engine introduces.
* *No-overflow regime*: candidate interactions are bucket-local, so
  while no bucket overflows into the vague part, any number of racing
  threads produce the exact single-thread report set and candidate
  state as long as each bucket's items arrive through one thread
  (bucket-affine feeding, e.g. :class:`~repro.parallel.sharded.
  ShardRouter`).
* *General regime*: with ``record_witness=True`` every committed
  sub-chunk is logged with a global ticket taken inside its innermost
  lock.  Replaying the witness segments in ticket order through a
  fresh single-thread batch filter (:func:`replay_witness`) reproduces
  the shared planes **bit-exactly** — cross-stripe candidate commits
  touch disjoint memory (they commute), vague-touching commits are
  totally ordered by the vague lock, and tickets extend both orders.

Throughput: CPython's GIL means the win over ``pipeline_shm`` comes
from skipping the per-chunk serialize/copy/deserialize entirely (the
numpy passes release the GIL for stretches, but that is a bonus, not
the design's load-bearing wall) — see the equal-core head-to-head in
``benchmarks/test_throughput_smoke.py`` and ``docs/performance.md``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import DEFAULT_CANDIDATE_FRACTION
from repro.core.vectorized import DEFAULT_CHUNK_SIZE, BatchQuantileFilter
from repro.observability.histogram import LogHistogram
from repro.streams.model import Trace

#: Default number of bucket stripes.  A multiple of the updater-thread
#: count keeps steady-state commits contention-free under bucket-affine
#: feeding (a thread's buckets then map onto a private stripe subset).
DEFAULT_NUM_STRIPES = 16

#: Default thread-local buffer length between flushes.  Matches the
#: batch engine's chunk size: each flush is one exact chunk pass.
DEFAULT_FLUSH_ITEMS = DEFAULT_CHUNK_SIZE

#: Optimistic seqlock read attempts before falling back to the lock.
_SEQLOCK_SPINS = 64


class StripeSink:
    """Per-stripe report/tally accumulator (mutated under its lock).

    Exposes the exact attribute set the batch engine's tier passes
    mutate (their ``sink`` parameter), so a stripe commit redirects all
    bookkeeping here instead of racing on shared filter attributes.
    """

    __slots__ = (
        "reported_keys",
        "report_count",
        "candidate_reports",
        "vague_reports",
        "candidate_hits",
        "vague_inserts",
        "swaps",
        "stats_tallies",
        "items",
        "flushes",
    )

    def __init__(self):
        self.reported_keys: Set[int] = set()
        self.report_count = 0
        self.candidate_reports = 0
        self.vague_reports = 0
        self.candidate_hits = 0
        self.vague_inserts = 0
        self.swaps = 0
        self.stats_tallies = False
        self.items = 0
        self.flushes = 0


@dataclass
class WitnessSegment:
    """One committed sub-chunk: its commit ticket and item arrays.

    ``ticket`` is drawn inside the segment's innermost lock, so sorting
    segments by ticket linearizes the concurrent execution (see the
    module docstring); ``keys``/``values`` are private copies.
    """

    ticket: int
    keys: np.ndarray
    values: np.ndarray


class ConcurrentQuantileFilter:
    """A QuantileFilter whose planes are shared by N updater threads.

    Construction mirrors :class:`~repro.core.vectorized.
    BatchQuantileFilter` (integer keys, float counters); the extra
    knobs are the concurrency geometry:

    Parameters
    ----------
    num_stripes:
        Bucket-stripe count (lock granularity).  More stripes = less
        commit contention; ``DEFAULT_NUM_STRIPES`` unless the filter is
        tiny.
    flush_items:
        Default thread-local buffer length for :meth:`ingest`.
    record_witness:
        Log every committed sub-chunk with a commit ticket for
        :func:`replay_witness` (test/verification aid; costs one array
        copy per commit).
    """

    def __init__(
        self,
        criteria: Criteria,
        memory_bytes: Optional[int] = None,
        *,
        num_buckets: Optional[int] = None,
        vague_width: Optional[int] = None,
        bucket_size: int = 6,
        depth: int = 3,
        candidate_fraction: float = DEFAULT_CANDIDATE_FRACTION,
        fp_bits: int = 16,
        strategy: str = "comparative",
        seed: int = 0,
        num_stripes: int = DEFAULT_NUM_STRIPES,
        flush_items: int = DEFAULT_FLUSH_ITEMS,
        record_witness: bool = False,
    ):
        if num_stripes < 1:
            raise ParameterError(
                f"num_stripes must be >= 1, got {num_stripes}"
            )
        if flush_items < 1:
            raise ParameterError(
                f"flush_items must be >= 1, got {flush_items}"
            )
        self._core = BatchQuantileFilter(
            criteria,
            memory_bytes,
            num_buckets=num_buckets,
            vague_width=vague_width,
            bucket_size=bucket_size,
            depth=depth,
            candidate_fraction=candidate_fraction,
            fp_bits=fp_bits,
            strategy=strategy,
            seed=seed,
        )
        self.seed = seed
        self.flush_items = flush_items
        # More stripes than buckets would leave empty stripes holding
        # locks nothing maps to; clamp silently (tiny test filters).
        self.num_stripes = min(num_stripes, self._core.num_buckets)
        self._stripe_locks = [
            threading.Lock() for _ in range(self.num_stripes)
        ]
        self._vague_lock = threading.Lock()
        #: Per-stripe seqlock counters — odd while a commit is mutating
        #: the stripe.  Plain list of ints: every write happens under
        #: the stripe's lock, readers only ever load.
        self._stripe_seq = [0] * self.num_stripes
        self._sinks = [StripeSink() for _ in range(self.num_stripes)]
        #: Commit tickets; ``itertools.count`` advances atomically on
        #: CPython, and each draw happens inside a lock anyway.
        self._tickets = itertools.count()
        self.witness: Optional[List[WitnessSegment]] = (
            [] if record_witness else None
        )
        #: Stripe-lock wait time per flush sub-chunk (seconds), surfaced
        #: as the ``qf_lock_wait_seconds`` histogram by observe_filter.
        self.lock_wait = LogHistogram(min_value=1e-7, max_value=10.0)
        self._telemetry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, flush_items: Optional[int] = None) -> "ThreadIngest":
        """A new thread-local ingest buffer bound to this filter.

        Each updater thread owns one; buffers are independent, so no
        two threads may share a :class:`ThreadIngest`.
        """
        return ThreadIngest(
            self, flush_items if flush_items is not None else self.flush_items
        )

    def process(self, keys: np.ndarray, values: np.ndarray) -> Set[int]:
        """Single-caller convenience: ingest + flush the whole stream.

        Chunks through the striped commit path exactly as a lone
        updater thread would; returns the deduplicated reported keys.
        """
        trace = Trace(np.asarray(keys), np.asarray(values))
        for chunk_keys, chunk_values in trace.iter_chunks(self.flush_items):
            self._flush(chunk_keys, chunk_values)
        return self.reported_keys

    def _flush(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Commit one ingest buffer through the striped two-tier pass.

        Stable-sorts the buffer by stripe, then for each stripe's
        sub-chunk: take the stripe lock, classify against current
        plane state, commit the fast tier, and — only when the
        sub-chunk has scalar-tier items, which may touch the shared
        vague part — additionally take the vague lock (lock order is
        stripe -> vague everywhere).
        """
        core = self._core
        n = int(keys.shape[0])
        if n == 0:
            return
        # Hash/precompute outside any lock: pure function of the inputs.
        fps, buckets, weights = core._chunk_parts(keys, values)
        stripes = buckets % self.num_stripes
        order = np.argsort(stripes, kind="stable")
        sorted_stripes = stripes[order]
        # Boundaries of each stripe's run inside the sorted permutation.
        boundaries = np.flatnonzero(
            np.diff(sorted_stripes, prepend=-1, append=self.num_stripes)
        )
        seq = self._stripe_seq
        for i in range(len(boundaries) - 1):
            lo, hi = int(boundaries[i]), int(boundaries[i + 1])
            if lo == hi:
                continue
            idx = order[lo:hi]
            stripe = int(sorted_stripes[lo])
            sub_keys = keys[idx]
            sub_fps = fps[idx]
            sub_buckets = buckets[idx]
            sub_weights = weights[idx]
            sink = self._sinks[stripe]
            lock = self._stripe_locks[stripe]
            wait_start = time.perf_counter()
            with lock:
                waited = time.perf_counter() - wait_start
                seq[stripe] += 1  # odd: commit in progress
                try:
                    hit, fast_idx, slow_idx = core._classify_chunk(
                        sub_fps, sub_buckets
                    )
                    if slow_idx.size:
                        # Scalar-tier items can spill into the shared
                        # vague sketch: serialize on the vague lock for
                        # the whole mixed commit so the witness ticket
                        # (drawn below) extends the vague order too.
                        with self._vague_lock:
                            self._record_witness(idx, keys, values)
                            if fast_idx.size:
                                core._fast_candidate_pass(
                                    sub_keys, sub_buckets, sub_weights,
                                    hit, fast_idx, sink=sink,
                                )
                            core._scalar_pass(
                                sub_keys, sub_fps, sub_buckets,
                                sub_weights, slow_idx, sink=sink,
                            )
                    else:
                        self._record_witness(idx, keys, values)
                        core._fast_candidate_pass(
                            sub_keys, sub_buckets, sub_weights,
                            hit, fast_idx, sink=sink,
                        )
                    sink.items += int(idx.shape[0])
                    sink.flushes += 1
                finally:
                    seq[stripe] += 1  # even: stripe consistent again
            with self._telemetry_lock:
                self.lock_wait.record(waited)

    def _record_witness(
        self, idx: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        if self.witness is None:
            return
        segment = WitnessSegment(
            ticket=next(self._tickets),
            keys=keys[idx].copy(),
            values=values[idx].copy(),
        )
        # list.append is atomic under the GIL; segments from racing
        # threads interleave arbitrarily and are sorted by ticket at
        # replay time.
        self.witness.append(segment)

    # ------------------------------------------------------------------
    # read path (seqlock: never blocks inserts)
    # ------------------------------------------------------------------
    def query(self, key) -> float:
        """Current Qweight estimate of ``key`` (consistent snapshot read).

        Candidate part first (exact if resident), read optimistically
        under the owning stripe's seqlock; a candidate miss falls back
        to the vague estimate under the vague lock (misses are the rare
        path).
        """
        core = self._core
        key_arr = np.asarray([key], dtype=np.int64)
        fps, buckets, _ = core._chunk_parts(
            key_arr, np.zeros(1, dtype=np.float64)
        )
        fp = int(fps[0])
        bucket = int(buckets[0])
        stripe = bucket % self.num_stripes
        row_fps, row_qws = self._read_bucket(bucket, stripe)
        for slot in range(core.bucket_size):
            if row_fps[slot] == fp:
                return float(row_qws[slot])
        with self._vague_lock:
            return self._vague_estimate(fp, bucket)

    def _read_bucket(self, bucket: int, stripe: int):
        """Seqlock-consistent copy of one bucket's fp/qw rows."""
        core = self._core
        seq = self._stripe_seq
        for _ in range(_SEQLOCK_SPINS):
            before = seq[stripe]
            if before & 1:
                continue
            row_fps = core._cand_fps[bucket].tolist()
            row_qws = core._cand_qws[bucket].tolist()
            if seq[stripe] == before:
                return row_fps, row_qws
        # Pathological contention: take the lock (bounded, still rare).
        with self._stripe_locks[stripe]:
            return (
                core._cand_fps[bucket].tolist(),
                core._cand_qws[bucket].tolist(),
            )

    def _vague_estimate(self, fp: int, bucket: int) -> float:
        """Median-of-rows vague estimate (caller holds the vague lock)."""
        core = self._core
        from repro.core.vague import vague_key

        vkey = vague_key(fp, bucket)
        cols = core._hashes.indices(vkey)
        signs = core._signs.signs(vkey)
        ests = sorted(
            signs[r] * core._rows[r][cols[r]] for r in range(core.depth)
        )
        depth = core.depth
        if depth % 2:
            return float(ests[depth // 2])
        return float(0.5 * (ests[depth // 2 - 1] + ests[depth // 2]))

    @property
    def reported_keys(self) -> Set[int]:
        """Deduplicated reported keys across all stripes (lock-free).

        Optimistic set copies; a copy that races a concurrent ``add``
        raises ``RuntimeError`` and is retried, with a bounded fallback
        to the stripe locks.  The union is exact because each key
        belongs to exactly one stripe.
        """
        for _ in range(_SEQLOCK_SPINS):
            try:
                out: Set[int] = set()
                for sink in self._sinks:
                    out |= set(sink.reported_keys)
                return out
            except RuntimeError:
                continue
        out = set()
        for stripe, sink in enumerate(self._sinks):
            with self._stripe_locks[stripe]:
                out |= set(sink.reported_keys)
        return out

    def reports(self) -> Set[int]:
        """Alias of :attr:`reported_keys` (read-path naming parity)."""
        return self.reported_keys

    # ------------------------------------------------------------------
    # consistent snapshots / folding
    # ------------------------------------------------------------------
    def _all_locks(self):
        """Acquire every stripe lock (ascending) plus the vague lock."""
        return _MultiLock([*self._stripe_locks, self._vague_lock])

    def as_batch(self) -> BatchQuantileFilter:
        """A consistent point-in-time :class:`BatchQuantileFilter` copy.

        Takes all stripe locks (ascending order, so concurrent
        snapshots cannot deadlock) plus the vague lock, then deep-copies
        planes, vague rows, and the folded sink tallies.  The copy is a
        fully independent single-thread filter — persistable with
        :func:`repro.core.persistence.engine_state`, mergeable via
        :func:`repro.parallel.sharded.batch_filter_to_scalar`.
        """
        core = self._core
        with self._all_locks():
            twin = BatchQuantileFilter(
                core.criteria,
                num_buckets=core.num_buckets,
                vague_width=core.width,
                bucket_size=core.bucket_size,
                depth=core.depth,
                fp_bits=core.fp_bits,
                strategy=core.strategy.name,
                seed=core.seed,
            )
            twin._cand_fps[...] = core._cand_fps
            twin._cand_qws[...] = core._cand_qws
            twin._rows = [list(row) for row in core._rows]
            for sink in self._sinks:
                twin.reported_keys |= sink.reported_keys
                twin.report_count += sink.report_count
                twin.candidate_reports += sink.candidate_reports
                twin.vague_reports += sink.vague_reports
                twin.candidate_hits += sink.candidate_hits
                twin.vague_inserts += sink.vague_inserts
                twin.swaps += sink.swaps
                twin.items_processed += sink.items
            twin.retargets = core.retargets
            twin.stats_tallies = self.stats_tallies
            return twin

    snapshot = as_batch

    def retarget(self, threshold: float) -> Criteria:
        """Move the value threshold ``T`` under a full-structure lock.

        Taking every stripe lock guarantees no flush straddles the
        change — each sub-chunk commits entirely under the old or
        entirely under the new criteria, exactly the batch engine's
        chunk-boundary retargeting contract.
        """
        with self._all_locks():
            return self._core.retarget(threshold)

    # ------------------------------------------------------------------
    # filter-shaped accounting (observe_filter / structural_probe)
    # ------------------------------------------------------------------
    @property
    def criteria(self) -> Criteria:
        return self._core.criteria

    @property
    def retargets(self) -> int:
        return self._core.retargets

    @property
    def num_buckets(self) -> int:
        return self._core.num_buckets

    @property
    def bucket_size(self) -> int:
        return self._core.bucket_size

    @property
    def fp_bits(self) -> int:
        return self._core.fp_bits

    @property
    def width(self) -> int:
        return self._core.width

    @property
    def depth(self) -> int:
        return self._core.depth

    @property
    def strategy(self):
        return self._core.strategy

    @property
    def _rows(self):
        # Read-only view for structural_probe's vague-noise estimate.
        return self._core._rows

    @property
    def items_processed(self) -> int:
        return sum(sink.items for sink in self._sinks)

    @property
    def report_count(self) -> int:
        return sum(sink.report_count for sink in self._sinks)

    @property
    def candidate_reports(self) -> int:
        return sum(sink.candidate_reports for sink in self._sinks)

    @property
    def vague_reports(self) -> int:
        return sum(sink.vague_reports for sink in self._sinks)

    @property
    def candidate_hits(self) -> int:
        return sum(sink.candidate_hits for sink in self._sinks)

    @property
    def vague_inserts(self) -> int:
        return sum(sink.vague_inserts for sink in self._sinks)

    @property
    def swaps(self) -> int:
        return sum(sink.swaps for sink in self._sinks)

    @property
    def thread_flushes(self) -> int:
        """Striped sub-chunk commits completed (all stripes)."""
        return sum(sink.flushes for sink in self._sinks)

    @property
    def stats_tallies(self) -> bool:
        return all(sink.stats_tallies for sink in self._sinks)

    @stats_tallies.setter
    def stats_tallies(self, value: bool) -> None:
        for sink in self._sinks:
            sink.stats_tallies = bool(value)

    def entry_count(self) -> int:
        """Occupied candidate slots (racy scan: snapshot-quality only)."""
        return self._core.entry_count()

    def occupancy(self) -> float:
        return self._core.occupancy()

    def candidate_hit_rate(self) -> float:
        items = self.items_processed
        if items == 0:
            return 0.0
        return self.candidate_hits / items

    @property
    def nbytes(self) -> int:
        return self._core.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConcurrentQuantileFilter(num_stripes={self.num_stripes}, "
            f"num_buckets={self.num_buckets}, nbytes={self.nbytes})"
        )


class _MultiLock:
    """Context manager acquiring a lock list in order, releasing reversed."""

    __slots__ = ("_locks",)

    def __init__(self, locks):
        self._locks = locks

    def __enter__(self):
        for lock in self._locks:
            lock.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        for lock in reversed(self._locks):
            lock.release()


class ThreadIngest:
    """Thread-local ingest buffer feeding one ConcurrentQuantileFilter.

    Single-owner: exactly one thread appends and flushes.  Scalar
    inserts accumulate into Python lists (cheap appends, one ndarray
    materialization per flush); array inserts accumulate by reference.
    Both buffer until ``flush_items`` is reached — committing a
    sub-``flush_items`` slice immediately would defeat the whole point
    of the buffer (each commit pays fixed per-pass numpy and locking
    overhead, so the pipeline feeding 1/N-sized shard slices must still
    amortize over full-size flushes).
    """

    __slots__ = (
        "filt", "flush_items", "_keys", "_values", "_arrays",
        "_array_items", "flushes",
    )

    def __init__(self, filt: ConcurrentQuantileFilter, flush_items: int):
        if flush_items < 1:
            raise ParameterError(
                f"flush_items must be >= 1, got {flush_items}"
            )
        self.filt = filt
        self.flush_items = flush_items
        self._keys: List[int] = []
        self._values: List[float] = []
        #: Buffered (keys, values) array pairs, in arrival order; the
        #: scalar lists are folded in whenever the mode switches so one
        #: interleaving of insert()/insert_many() keeps stream order.
        self._arrays: List = []
        self._array_items = 0
        self.flushes = 0

    def _fold_scalar_buffer(self) -> None:
        if self._keys:
            self._arrays.append((
                np.asarray(self._keys, dtype=np.int64),
                np.asarray(self._values, dtype=np.float64),
            ))
            self._array_items += len(self._keys)
            self._keys = []
            self._values = []

    def insert(self, key: int, value: float) -> None:
        """Buffer one item; flushes when the buffer fills."""
        self._keys.append(key)
        self._values.append(value)
        if len(self._keys) + self._array_items >= self.flush_items:
            self.flush()

    def insert_many(self, keys, values) -> None:
        """Buffer whole arrays (by reference, zero copies).

        Flushes once the accumulated total reaches ``flush_items``;
        oversized inputs stream through in ``flush_items``-sized chunks
        via :meth:`~repro.streams.model.Trace.iter_chunks`.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape[0] == 0:
            return
        self._fold_scalar_buffer()
        self._arrays.append((keys, values))
        self._array_items += int(keys.shape[0])
        if self._array_items >= self.flush_items:
            self.flush()

    def flush(self) -> None:
        """Commit all buffered items now (no-op when empty)."""
        self._fold_scalar_buffer()
        if not self._arrays:
            return
        if len(self._arrays) == 1:
            keys, values = self._arrays[0]
        else:
            keys = np.concatenate([pair[0] for pair in self._arrays])
            values = np.concatenate([pair[1] for pair in self._arrays])
        self._arrays = []
        self._array_items = 0
        trace = Trace(keys, values)
        for chunk_keys, chunk_values in trace.iter_chunks(self.flush_items):
            self.filt._flush(chunk_keys, chunk_values)
            self.flushes += 1

    @property
    def pending(self) -> int:
        """Items buffered but not yet flushed."""
        return len(self._keys) + self._array_items

    def __enter__(self) -> "ThreadIngest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()


def replay_witness(
    segments: List[WitnessSegment], template: ConcurrentQuantileFilter
) -> BatchQuantileFilter:
    """Replay a witness log through a fresh single-thread batch filter.

    Segments are applied in commit-ticket order, each as one exact
    chunk pass.  Because tickets extend both the per-stripe lock order
    and the vague lock order, and cross-stripe candidate-only commits
    touch disjoint plane memory, the result is bit-identical to the
    concurrent filter's shared planes (see the module docstring and
    ``tests/properties/test_property_concurrent_equivalence.py``).
    """
    core = template._core
    replayed = BatchQuantileFilter(
        core.criteria,
        num_buckets=core.num_buckets,
        vague_width=core.width,
        bucket_size=core.bucket_size,
        depth=core.depth,
        fp_bits=core.fp_bits,
        strategy=core.strategy.name,
        seed=core.seed,
    )
    for segment in sorted(segments, key=lambda s: s.ticket):
        replayed._process_chunk(segment.keys, segment.values)
    return replayed
