"""Parallel and sharded QuantileFilter deployments.

Two layers:

* :class:`~repro.parallel.sharded.ShardedQuantileFilter` — in-process
  bucket-affine sharding: N full-geometry shard filters behind one
  filter-shaped façade, with a merge-based global view.
* :class:`~repro.parallel.pipeline.ParallelPipeline` — a
  ``multiprocessing`` pipeline placing one shard per worker process,
  with bounded queues, ordered/unordered report delivery, periodic
  merged views and crash surfacing.
* :class:`~repro.parallel.concurrent.ConcurrentQuantileFilter` — one
  shared set of filter planes updated by N threads through thread-local
  ingest buffers and striped bucket-range locks (the Quancurrent
  direction); ``ParallelPipeline(engine="threads")`` runs it behind the
  same pipeline API with zero chunk transport.

Both share one partition rule (:class:`~repro.parallel.sharded.
ShardRouter`), so the process-backed pipeline reports exactly the same
key set as the in-process sharded filter, which in turn matches a
single scalar filter whenever the candidate part never overflows (see
``tests/parallel/test_shard_equivalence.py`` and the consistency-model
notes in ``docs/operations.md``).
"""

from repro.parallel.sharded import (
    ENGINES,
    ShardRouter,
    ShardedQuantileFilter,
    batch_filter_to_scalar,
    sharded_reported_union,
)
from repro.parallel.concurrent import (
    ConcurrentQuantileFilter,
    ThreadIngest,
    replay_witness,
)
from repro.parallel.pipeline import (
    DEFAULT_CHUNK_ITEMS,
    PIPELINE_ENGINES,
    ParallelPipeline,
    PipelineError,
    PipelineResult,
    PipelineStallError,
    ReportBatch,
    WorkerCrashError,
    WorkerFailedError,
)

__all__ = [
    "ENGINES",
    "ConcurrentQuantileFilter",
    "ThreadIngest",
    "replay_witness",
    "PIPELINE_ENGINES",
    "ShardRouter",
    "ShardedQuantileFilter",
    "batch_filter_to_scalar",
    "sharded_reported_union",
    "DEFAULT_CHUNK_ITEMS",
    "ParallelPipeline",
    "PipelineError",
    "PipelineResult",
    "PipelineStallError",
    "ReportBatch",
    "WorkerCrashError",
    "WorkerFailedError",
]
