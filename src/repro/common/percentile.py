"""One percentile implementation shared by metrics and observability.

Two callers need percentiles and historically grew their own numpy
paths: :mod:`repro.metrics.latency` (exact per-key latency samples) and
the mergeable log-bucket histograms in
:mod:`repro.observability.histogram` (bucket counts, no raw samples).
Both now route through this module so the interpolation rule is defined
in exactly one place:

* :func:`percentile` — exact samples, linear interpolation between
  order statistics (numpy's default ``"linear"`` method).
* :func:`percentile_from_buckets` — a binned distribution, linear
  interpolation *within* the bucket containing the target rank.  On a
  histogram built from the same samples this converges to
  :func:`percentile` as buckets narrow.

>>> percentile([1.0, 2.0, 3.0, 4.0], 50)
2.5
>>> percentile_from_buckets([1.0, 2.0, 4.0], [2, 2, 0], 50)
1.5
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.errors import ParameterError


def _check_q(q: float) -> float:
    if not 0.0 <= q <= 100.0:
        raise ParameterError(f"percentile q must be in [0, 100], got {q}")
    return float(q)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of exact samples (0 for an empty set).

    ``q`` is on the [0, 100] scale; interpolation is linear between
    closest ranks (numpy's default).
    """
    _check_q(q)
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def percentile_from_buckets(
    upper_bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    lowest_bound: float = 0.0,
) -> float:
    """The ``q``-th percentile of a binned distribution.

    ``upper_bounds[i]`` is the inclusive upper edge of bucket ``i`` and
    ``counts[i]`` the number of samples that landed in it; bucket 0
    spans ``(lowest_bound, upper_bounds[0]]``.  The target rank is
    located on the cumulative distribution and interpolated linearly
    inside its bucket.  A final ``inf`` bound is allowed (the overflow
    bucket); ranks landing there return its lower edge, the only honest
    answer a bounded histogram can give.  Returns 0 when empty.
    """
    _check_q(q)
    if len(upper_bounds) != len(counts):
        raise ParameterError(
            f"bounds and counts length mismatch: "
            f"{len(upper_bounds)} vs {len(counts)}"
        )
    total = int(sum(counts))
    if total == 0:
        return 0.0
    target = q / 100.0 * total
    cumulative = 0
    lower = float(lowest_bound)
    for bound, count in zip(upper_bounds, counts):
        upper = float(bound)
        if count:
            if cumulative + count >= target:
                if upper == np.inf:
                    return lower
                fraction = (target - cumulative) / count
                # target == cumulative (q below this bucket's first
                # sample) still reads the bucket's lower edge.
                return lower + max(0.0, fraction) * (upper - lower)
            cumulative += count
        lower = upper
    # Floating-point slack: the target fell past the last occupied
    # bucket; return its upper edge (lower edge when unbounded).
    last_idx = max(i for i, c in enumerate(counts) if c)
    upper = float(upper_bounds[last_idx])
    if upper != np.inf:
        return upper
    return float(upper_bounds[last_idx - 1]) if last_idx else float(lowest_bound)
