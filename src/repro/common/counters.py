"""Integer counter arrays with saturation and probabilistic rounding.

The paper stores Qweights in narrow integer counters (16-bit or even
8-bit) rather than floats, for space efficiency (Sec. III-A "Technical
Details").  Two details matter and are both implemented here:

* **Probabilistic rounding.**  The per-item weight ``delta/(1-delta)``
  is usually fractional.  The integer part is always added; the
  fractional part is added as +1 with probability equal to the fraction,
  so the expected increment equals the true weight (unbiased, variance
  < 0.25).
* **Saturation.**  A counter must never roll over (e.g. 32767 + 1 must
  not become -32768); additions that would overflow are clamped at the
  type's limits instead.
"""

from __future__ import annotations

import random

import numpy as np

from repro.common.errors import ParameterError

#: Counter widths supported by :class:`CounterArray`, mapping the public
#: name to (numpy dtype, min, max).  ``"float"`` disables both rounding
#: and saturation and is used for the ablation baseline.
COUNTER_KINDS = {
    "int8": (np.int8, -(1 << 7), (1 << 7) - 1),
    "int16": (np.int16, -(1 << 15), (1 << 15) - 1),
    "int32": (np.int32, -(1 << 31), (1 << 31) - 1),
    "int64": (np.int64, -(1 << 63), (1 << 63) - 1),
    "float": (np.float64, -np.inf, np.inf),
}


def probabilistic_round(value: float, rng: random.Random) -> int:
    """Round ``value`` to an integer with expectation equal to ``value``.

    ``floor(value)`` is returned, plus one with probability equal to the
    fractional part.  Works for negative values too (the fractional part
    of -1.25 is 0.75, so it rounds to -2 w.p. 0.25 and -1 w.p. 0.75).
    """
    floor = int(np.floor(value))
    frac = value - floor
    if frac > 0 and rng.random() < frac:
        return floor + 1
    return floor


class CounterArray:
    """A 2-D array of saturating counters.

    This is the storage backend shared by the Count Sketch and Count-Min
    Sketch.  All mutation goes through :meth:`add` (scalar) or
    :meth:`add_batch` (vectorised), both of which apply probabilistic
    rounding for fractional increments on integer kinds and clamp at the
    type limits instead of wrapping.

    Parameters
    ----------
    rows, cols:
        Shape of the counter matrix.
    kind:
        One of :data:`COUNTER_KINDS` (``"int32"`` by default).
    seed:
        Seed for the rounding RNG.
    """

    __slots__ = ("rows", "cols", "kind", "data", "_lo", "_hi", "_is_float", "_rng")

    def __init__(self, rows: int, cols: int, kind: str = "int32", seed: int = 0):
        if kind not in COUNTER_KINDS:
            raise ParameterError(
                f"unknown counter kind {kind!r}; choose from {sorted(COUNTER_KINDS)}"
            )
        if rows < 1 or cols < 1:
            raise ParameterError(f"counter array shape must be positive, got {rows}x{cols}")
        dtype, lo, hi = COUNTER_KINDS[kind]
        self.rows = rows
        self.cols = cols
        self.kind = kind
        self.data = np.zeros((rows, cols), dtype=dtype)
        self._lo = lo
        self._hi = hi
        self._is_float = kind == "float"
        self._rng = random.Random(seed ^ 0x7F4A7C15)

    @property
    def bytes_per_counter(self) -> int:
        """Storage cost of one counter in bytes."""
        return self.data.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total storage cost of the counter matrix in bytes."""
        return self.data.nbytes

    def get(self, row: int, col: int) -> float:
        """Current value of counter ``(row, col)``."""
        return float(self.data[row, col])

    def set(self, row: int, col: int, value: float) -> None:
        """Overwrite counter ``(row, col)``, clamping to the type range."""
        if self._is_float:
            self.data[row, col] = value
            return
        self.data[row, col] = int(min(max(value, self._lo), self._hi))

    def add(self, row: int, col: int, delta: float) -> None:
        """Add ``delta`` to counter ``(row, col)`` with rounding+saturation."""
        if self._is_float:
            self.data[row, col] += delta
            return
        if delta != int(delta):
            delta = probabilistic_round(delta, self._rng)
        new = int(self.data[row, col]) + int(delta)
        if new > self._hi:
            new = self._hi
        elif new < self._lo:
            new = self._lo
        self.data[row, col] = new

    def add_batch(self, rows: np.ndarray, cols: np.ndarray, deltas: np.ndarray) -> None:
        """Scatter-add many increments at once (vectorised path).

        Duplicate ``(row, col)`` targets accumulate (``np.add.at``
        semantics).  The accumulation is done in float64 and clamped once
        at the end; with narrow counters this slightly idealises
        *intermediate* saturation, which is acceptable for the batch
        throughput engine (scalar :meth:`add` remains the reference).
        """
        acc = self.data.astype(np.float64)
        np.add.at(acc, (rows, cols), deltas)
        if self._is_float:
            self.data = acc
            return
        np.clip(acc, self._lo, self._hi, out=acc)
        self.data = np.round(acc).astype(self.data.dtype)

    def clear(self) -> None:
        """Reset every counter to zero."""
        self.data[...] = 0

    def saturation_fraction(self) -> float:
        """Fraction of counters currently pinned at a type limit.

        Useful for monitoring whether the chosen width is too narrow for
        the workload (the paper argues sign-hash cancellation keeps this
        near zero even for 8-bit counters).
        """
        if self._is_float:
            return 0.0
        pinned = np.count_nonzero(
            (self.data == self._lo) | (self.data == self._hi)
        )
        return pinned / self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterArray(rows={self.rows}, cols={self.cols}, "
            f"kind={self.kind!r}, nbytes={self.nbytes})"
        )
