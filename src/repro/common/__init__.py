"""Shared low-level substrates: hashing, counters, memory accounting.

These modules are deliberately dependency-light; everything else in the
package builds on them.  All randomness is seeded explicitly so that
experiments are reproducible run-to-run.
"""

from repro.common.errors import ReproError, ParameterError
from repro.common.hashing import (
    HashFamily,
    SignHashFamily,
    FingerprintHasher,
    canonical_key,
    mix64,
)
from repro.common.counters import CounterArray, probabilistic_round
from repro.common.memory import MemoryModel, sizeof_counter

__all__ = [
    "ReproError",
    "ParameterError",
    "HashFamily",
    "SignHashFamily",
    "FingerprintHasher",
    "canonical_key",
    "mix64",
    "CounterArray",
    "probabilistic_round",
    "MemoryModel",
    "sizeof_counter",
]
