"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still letting programming errors (``TypeError``
and friends) propagate untouched.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its legal range.

    Also derives from :class:`ValueError` so generic validation code that
    expects ``ValueError`` keeps working.
    """


class CapacityError(ReproError):
    """A fixed-capacity structure was asked to hold more than it can."""


class TraceFormatError(ReproError):
    """A stored trace file does not match the expected on-disk format."""
