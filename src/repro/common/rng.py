"""Deterministic RNG plumbing.

Experiments fan out over many generators and sketch instances; each gets
its own child seed derived from one experiment master seed so that (a)
runs are reproducible end-to-end and (b) components do not accidentally
share random streams.
"""

from __future__ import annotations

import random

import numpy as np

from repro.common.hashing import mix64


def derive_seed(master: int, *labels) -> int:
    """Derive a child seed from a master seed and a label path.

    Labels may be strings or ints; the derivation is deterministic and
    avalanche-mixed so nearby labels give unrelated streams, e.g.
    ``derive_seed(42, "fig4", "squad", 3)``.
    """
    state = mix64(master & ((1 << 64) - 1))
    for label in labels:
        if isinstance(label, str):
            for ch in label.encode("utf-8"):
                state = mix64(state ^ ch)
        else:
            state = mix64(state ^ (int(label) & ((1 << 64) - 1)))
    return state


def py_rng(master: int, *labels) -> random.Random:
    """A ``random.Random`` seeded from the derived child seed."""
    return random.Random(derive_seed(master, *labels))


def np_rng(master: int, *labels) -> np.random.Generator:
    """A numpy ``Generator`` seeded from the derived child seed."""
    return np.random.default_rng(derive_seed(master, *labels))
