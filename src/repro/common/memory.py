"""Memory accounting for accuracy-vs-space experiments.

The paper's headline result is a space saving of 50-500x at equal
accuracy, so every structure in this package reports its footprint in
*modelled* bytes — the bytes the structure would occupy in the compact
array layout the paper assumes (counters at their declared width,
fingerprints at their declared bit length), not Python object overhead.
This matches how sketch papers report memory and makes the curves
comparable to the paper's x-axes.

:class:`MemoryModel` additionally solves the inverse problem the
experiment harness needs: given a total budget in bytes and a structure's
per-slot cost, how many slots can it afford?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ParameterError

#: Bytes per counter for each counter kind (matches numpy itemsize).
_COUNTER_BYTES = {
    "int8": 1,
    "int16": 2,
    "int32": 4,
    "int64": 8,
    "float": 8,
}


def sizeof_counter(kind: str) -> int:
    """Bytes occupied by one counter of the given kind."""
    try:
        return _COUNTER_BYTES[kind]
    except KeyError:
        raise ParameterError(
            f"unknown counter kind {kind!r}; choose from {sorted(_COUNTER_BYTES)}"
        ) from None


def bits_to_bytes(bits: int) -> int:
    """Bytes needed to store ``bits`` bits, rounded up."""
    if bits < 0:
        raise ParameterError(f"bit count must be non-negative, got {bits}")
    return (bits + 7) // 8


@dataclass
class MemoryModel:
    """Itemised memory budget for a composite structure.

    Components are registered with :meth:`add` and the total is
    :attr:`total_bytes`.  The experiment harness uses the breakdown to
    print per-part memory in reports.
    """

    components: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, nbytes: int) -> None:
        """Register (or accumulate into) a named component."""
        if nbytes < 0:
            raise ParameterError(f"component {name!r} has negative size {nbytes}")
        self.components[name] = self.components.get(name, 0) + int(nbytes)

    @property
    def total_bytes(self) -> int:
        """Sum of all registered component sizes."""
        return sum(self.components.values())

    def breakdown(self) -> Dict[str, int]:
        """Copy of the per-component byte counts."""
        return dict(self.components)


def split_budget(total_bytes: int, candidate_fraction: float) -> tuple:
    """Split a byte budget between candidate and vague parts.

    The paper allocates candidate:vague = 4:1 by default
    (``candidate_fraction = 0.8``).  Returns
    ``(candidate_bytes, vague_bytes)``; both are at least 1 so neither
    part degenerates to zero slots under tiny budgets.
    """
    if total_bytes < 2:
        raise ParameterError(f"budget must be at least 2 bytes, got {total_bytes}")
    if not 0.0 < candidate_fraction < 1.0:
        raise ParameterError(
            f"candidate_fraction must be in (0, 1), got {candidate_fraction}"
        )
    candidate = max(1, int(total_bytes * candidate_fraction))
    vague = max(1, total_bytes - candidate)
    return candidate, vague
