"""Seeded hash families used by every sketch in this package.

The paper's structures need three kinds of hashing:

* **column hashes** ``h_i(x)`` mapping a key to one column per sketch row
  (:class:`HashFamily`),
* **sign hashes** ``S_i(x)`` returning +1/-1 with equal probability
  (:class:`SignHashFamily`),
* **fingerprints** ``h_fp(x)`` — short (default 16-bit) key digests stored
  in the candidate part (:class:`FingerprintHasher`).

All of them are built on one primitive, :func:`mix64` (the splitmix64
finalizer), applied to a canonical 64-bit representation of the key
produced by :func:`canonical_key`.  Python's built-in ``hash`` is avoided
because it is salted per process for strings, which would make experiment
runs irreproducible.

Every family accepts a ``seed`` so independent sketch instances do not
share collision patterns, and every scalar operation has a vectorised
twin operating on ``numpy`` ``uint64`` arrays for the batch engines.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.common.errors import ParameterError

_MASK64 = (1 << 64) - 1

#: Shared numpy scalar constants — pre-cast once at import so the batch
#: hot paths never re-box Python ints into ``np.uint64`` per call.
_ONE_U64 = np.uint64(1)
_ZERO_U64 = np.uint64(0)

# splitmix64 constants (Steele, Lea & Flood, "Fast splittable PRNGs")
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_M1 = 0xBF58476D1CE4E5B9
_SPLITMIX_M2 = 0x94D049BB133111EB

# FNV-1a 64-bit constants for byte-string canonicalisation
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

KeyLike = Union[int, str, bytes, tuple]


def mix64(x: int) -> int:
    """Finalize a 64-bit integer with the splitmix64 mixing function.

    This is a bijective avalanche mixer: flipping any input bit flips
    each output bit with probability ~1/2, which is what makes one
    integer key usable with many derived hash functions.
    """
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SPLITMIX_M1) & _MASK64
    x = ((x ^ (x >> 27)) * _SPLITMIX_M2) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _fnv1a(data: bytes) -> int:
    acc = _FNV_OFFSET
    for byte in data:
        acc ^= byte
        acc = (acc * _FNV_PRIME) & _MASK64
    return acc


def canonical_key(key: KeyLike) -> int:
    """Map an arbitrary key to a stable unsigned 64-bit integer.

    Supported key types mirror what the paper's workloads use: integers
    (already-packed flow ids), strings/bytes (names), and tuples (the
    CAIDA five-tuple).  The mapping is deterministic across processes —
    unlike built-in ``hash`` — so stored traces replay identically.
    """
    if isinstance(key, (int, np.integer)):
        return mix64(int(key) & _MASK64)
    if isinstance(key, bytes):
        return _fnv1a(key)
    if isinstance(key, str):
        return _fnv1a(key.encode("utf-8"))
    if isinstance(key, tuple):
        acc = _FNV_OFFSET
        for part in key:
            acc = (acc ^ canonical_key(part)) * _FNV_PRIME & _MASK64
            acc = mix64(acc)
        return acc
    raise ParameterError(
        f"unsupported key type {type(key).__name__}; "
        "use int, str, bytes or a tuple of those"
    )


def canonical_keys(keys: Iterable[KeyLike]) -> np.ndarray:
    """Vector form of :func:`canonical_key`: returns a ``uint64`` array.

    Integer arrays take a fast fully-vectorised path; anything else falls
    back to the scalar routine per element.
    """
    if isinstance(keys, np.ndarray) and np.issubdtype(keys.dtype, np.integer):
        return _mix64_array(keys.astype(np.uint64, copy=False))
    return np.fromiter(
        (canonical_key(k) for k in keys), dtype=np.uint64
    )


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finalizer over a ``uint64`` array."""
    with np.errstate(over="ignore"):
        x = x + np.uint64(_SPLITMIX_GAMMA)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_SPLITMIX_M1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_SPLITMIX_M2)
        return x ^ (x >> np.uint64(31))


class HashFamily:
    """``depth`` pairwise-independent column hashes onto ``[0, width)``.

    Row ``i``'s hash of key ``x`` is ``mix64(x ^ seed_i) % width`` where
    the per-row seeds are derived from the family seed by repeated
    splitmix64 steps.  Keys must already be canonical 64-bit integers
    (see :func:`canonical_key`); sketches canonicalise once per item and
    reuse the integer for all rows.
    """

    __slots__ = ("depth", "width", "_seeds", "_seeds_np", "_width_u64")

    def __init__(self, depth: int, width: int, seed: int = 0):
        if depth < 1:
            raise ParameterError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
        self.depth = depth
        self.width = width
        state = mix64(seed ^ 0xA5A5A5A5A5A5A5A5)
        seeds = []
        for _ in range(depth):
            state = mix64(state)
            seeds.append(state)
        self._seeds = seeds
        self._seeds_np = np.asarray(seeds, dtype=np.uint64)
        self._width_u64 = np.uint64(width)

    def index(self, row: int, key_int: int) -> int:
        """Column index of ``key_int`` in ``row``."""
        return mix64(key_int ^ self._seeds[row]) % self.width

    def indices(self, key_int: int) -> list:
        """Column index of ``key_int`` in every row (length ``depth``)."""
        return [mix64(key_int ^ s) % self.width for s in self._seeds]

    def indices_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`indices`: ``(depth, n)`` array of columns."""
        keys = keys.astype(np.uint64, copy=False)
        mixed = _mix64_array(keys[None, :] ^ self._seeds_np[:, None])
        return (mixed % self._width_u64).astype(np.int64)


class SignHashFamily:
    """``depth`` sign hashes ``S_i(x)`` returning +1 or -1.

    The sign is the low bit of a mix independent from the column hash
    (different seed stream), as Count Sketch requires the pair
    ``(h_i, S_i)`` to behave independently.
    """

    __slots__ = ("depth", "_seeds", "_seeds_np")

    def __init__(self, depth: int, seed: int = 0):
        if depth < 1:
            raise ParameterError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        state = mix64(seed ^ 0x5C5C5C5C5C5C5C5C)
        seeds = []
        for _ in range(depth):
            state = mix64(state)
            seeds.append(state)
        self._seeds = seeds
        self._seeds_np = np.asarray(seeds, dtype=np.uint64)

    def sign(self, row: int, key_int: int) -> int:
        """Sign (+1 or -1) of ``key_int`` in ``row``."""
        return 1 if mix64(key_int ^ self._seeds[row]) & 1 else -1

    def signs(self, key_int: int) -> list:
        """Signs of ``key_int`` in every row (length ``depth``)."""
        return [
            1 if mix64(key_int ^ s) & 1 else -1 for s in self._seeds
        ]

    def signs_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`signs`: ``(depth, n)`` array of +1/-1."""
        keys = keys.astype(np.uint64, copy=False)
        bits = _mix64_array(keys[None, :] ^ self._seeds_np[:, None])
        return np.where(bits & _ONE_U64, 1, -1).astype(np.int64)


class FingerprintHasher:
    """Short key digests for the candidate part.

    Fingerprints are ``bits`` wide (default 16, as in the paper) and
    never zero — zero is reserved as the "empty slot" marker in bucket
    storage, so the hasher maps the all-zero digest to 1.  The collision
    probability between two distinct keys is ``~2^-bits`` (the paper
    quotes <0.01 % for 16 bits).
    """

    __slots__ = ("bits", "_seed", "_mask", "_seed_u64", "_mask_u64")

    def __init__(self, bits: int = 16, seed: int = 0):
        if not 1 <= bits <= 64:
            raise ParameterError(f"fingerprint bits must be in [1, 64], got {bits}")
        self.bits = bits
        self._seed = mix64(seed ^ 0x3C3C3C3C3C3C3C3C)
        self._mask = (1 << bits) - 1
        self._seed_u64 = np.uint64(self._seed)
        self._mask_u64 = np.uint64(self._mask)

    def fingerprint(self, key_int: int) -> int:
        """Non-zero ``bits``-wide fingerprint of ``key_int``."""
        fp = mix64(key_int ^ self._seed) & self._mask
        return fp if fp else 1

    def fingerprints_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`fingerprint` over a ``uint64`` key array."""
        keys = keys.astype(np.uint64, copy=False)
        fps = _mix64_array(keys ^ self._seed_u64) & self._mask_u64
        return np.where(fps == 0, _ONE_U64, fps)
