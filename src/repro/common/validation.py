"""Small parameter-validation helpers shared across modules.

Keeping the checks in one place gives uniform error messages and keeps
constructor bodies readable.
"""

from __future__ import annotations

from repro.common.errors import ParameterError


def require_positive_int(name: str, value) -> int:
    """Validate that ``value`` is an integer >= 1 and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ParameterError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ParameterError(f"{name} must be >= 1, got {value}")
    return value


def require_non_negative(name: str, value) -> float:
    """Validate that ``value`` is a number >= 0 and return it as float."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a number, got {value!r}") from None
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value}")
    return value


def require_in_open_unit_interval(name: str, value) -> float:
    """Validate that ``value`` lies strictly inside (0, 1)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a number, got {value!r}") from None
    if not 0.0 < value < 1.0:
        raise ParameterError(f"{name} must be in (0, 1), got {value}")
    return value


def require_probability(name: str, value) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ParameterError(f"{name} must be a number, got {value!r}") from None
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return value
