"""``python -m repro`` — the operations CLI (``stats`` / ``watch`` /
``trace`` / ``serve`` / ``health``).

Delegates to :mod:`repro.observability.cli`; the ``repro-experiments``
figure runner stays its own entry point
(:mod:`repro.experiments.cli`).
"""

import sys

from repro.observability.cli import main

if __name__ == "__main__":
    sys.exit(main())
