"""Adapters that turn estimators into Definition 4 detectors.

The SOTA baselines (SQUAD, SketchPolymer, HistSketch) natively answer
"what is key x's quantile?" — the *offline query* model.  To solve the
online detection problem they must query after every insert, which is
exactly the cost the paper charges them (Sec. V-C).
:class:`QueryOnInsertAdapter` implements that insert-then-query loop over
anything matching :class:`MultiKeyQuantileEstimator`.

:class:`QuantileFilterDetector` and :class:`NaiveDetector` are thin
shims giving the package's own structures the same
:class:`~repro.detection.base.Detector` face.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Optional, Set

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.naive import NaiveDualCSketch
from repro.core.quantile_filter import QuantileFilter
from repro.detection.base import Detector


class MultiKeyQuantileEstimator(ABC):
    """Interface of the offline-query SOTA baselines."""

    @abstractmethod
    def insert(self, key: Hashable, value: float) -> None:
        """Record one item."""

    @abstractmethod
    def quantile(self, key: Hashable, delta: float, epsilon: float = 0.0) -> float:
        """Estimated ``(epsilon, delta)``-quantile of ``key``'s values
        (``-inf`` when too few values have been seen)."""

    @property
    @abstractmethod
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes."""

    def reset_key(self, key: Hashable) -> bool:
        """Forget ``key``'s values after a report, if supported.

        Returns True when the reset happened.  Most offline structures
        cannot delete per-key state; the default no-op mirrors that
        (duplicate reports are absorbed by the deduplicated metric).
        """
        return False


class QueryOnInsertAdapter(Detector):
    """Insert-then-query detector over an offline-query estimator.

    Parameters
    ----------
    estimator:
        Any :class:`MultiKeyQuantileEstimator`.
    criteria:
        The ``(epsilon, delta, T)`` detection criteria.
    query_every:
        Query cadence: 1 (default) queries after every insert — the
        honest online cost; larger values model the paper's observation
        that slow SOTA queries force monitors to sample less often,
        trading speed for missed/late reports.
    """

    def __init__(
        self,
        estimator: MultiKeyQuantileEstimator,
        criteria: Criteria,
        query_every: int = 1,
    ):
        if query_every < 1:
            raise ParameterError(f"query_every must be >= 1, got {query_every}")
        self.estimator = estimator
        self.criteria = criteria
        self.query_every = query_every
        self.name = f"{type(estimator).__name__.lower()}"
        self._reported: Set[Hashable] = set()
        self._items = 0
        self.query_count = 0

    def process(self, key: Hashable, value: float) -> Optional[Hashable]:
        """Insert the item, then (on cadence) query and compare to T."""
        self._items += 1
        self.estimator.insert(key, value)
        if self._items % self.query_every:
            return None
        self.query_count += 1
        estimate = self.estimator.quantile(
            key, self.criteria.delta, self.criteria.epsilon
        )
        if estimate > self.criteria.threshold:
            self._reported.add(key)
            self.estimator.reset_key(key)
            return key
        return None

    @property
    def reported_keys(self) -> Set[Hashable]:
        return self._reported

    @property
    def items_processed(self) -> int:
        return self._items

    @property
    def nbytes(self) -> int:
        return self.estimator.nbytes


class QuantileFilterDetector(Detector):
    """QuantileFilter behind the generic Detector interface."""

    name = "quantilefilter"

    def __init__(self, filter_: QuantileFilter):
        self.filter = filter_

    @classmethod
    def build(cls, criteria: Criteria, memory_bytes: int, **kwargs) -> "QuantileFilterDetector":
        """Construct filter + detector in one call (harness convenience)."""
        return cls(QuantileFilter(criteria, memory_bytes, **kwargs))

    def process(self, key: Hashable, value: float) -> Optional[Hashable]:
        report = self.filter.insert(key, value)
        return report.key if report is not None else None

    @property
    def reported_keys(self) -> Set[Hashable]:
        return self.filter.reported_keys

    @property
    def items_processed(self) -> int:
        return self.filter.items_processed

    @property
    def nbytes(self) -> int:
        return self.filter.nbytes


class NaiveDetector(Detector):
    """The Section II-D naive dual-Csketch behind the Detector interface."""

    name = "naive-dual-csketch"

    def __init__(self, naive: NaiveDualCSketch):
        self.naive = naive

    @classmethod
    def build(cls, criteria: Criteria, memory_bytes: int, **kwargs) -> "NaiveDetector":
        """Construct sketch + detector in one call (harness convenience)."""
        return cls(NaiveDualCSketch(criteria, memory_bytes, **kwargs))

    def process(self, key: Hashable, value: float) -> Optional[Hashable]:
        report = self.naive.insert(key, value)
        return report.key if report is not None else None

    @property
    def reported_keys(self) -> Set[Hashable]:
        return self.naive.reported_keys

    @property
    def items_processed(self) -> int:
        return self.naive.items_processed

    @property
    def nbytes(self) -> int:
        return self.naive.nbytes
