"""Adaptive threshold control: close the loop on ``T``.

Every structure in the package takes the value threshold ``T`` as an
operator-chosen constant, yet the health layer already *detects* when
the value distribution drifts away from it
(:class:`~repro.observability.health.ExceedanceDriftDetector` fires,
``report_rate`` degrades) without anything *reacting*.  This module
supplies the reaction: track a target global quantile ``q*`` of the
value stream online and retarget live filters so the exceedance rate
``P(v > T)`` holds at ``1 - q*`` under drift.

Three layers, smallest first:

* **Estimators** — two interchangeable single-quantile trackers behind
  one ``update(value)`` / ``quantile()`` interface:
  :class:`P2QuantileEstimator` (the Jain & Chlamtac P² algorithm —
  five markers, O(1) space and update, no allocation after startup)
  and :class:`KLLQuantileEstimator` (the existing
  :class:`~repro.quantiles.kll.KLLSketch`, with a provable rank-error
  bound and mergeability at ~``3k`` stored values).
* **Controller** — :class:`ThresholdController` folds an estimator
  with the two guards that keep ``T`` from thrashing: a relative
  *deadband* (ignore estimate moves smaller than ``deadband · T``) and
  a *minimum dwell* (never retarget twice within ``min_dwell_items``
  observations), plus a warmup gate so cold estimators cannot steer.
  Every evaluation returns a :class:`ThresholdDecision` naming what
  happened and why.
* **Loop closure** — :class:`ThresholdControlLoop` binds a controller
  to anything with a ``retarget(T)`` method (the scalar filter, the
  batch engine, the sharded façade, the process pipeline) and applies
  accepted decisions, optionally subsampling the value stream so the
  estimator cost stays off the hot path.

Tuning guidance, the P² vs KLL trade-off discussion and the operations
runbook live in ``docs/adaptive-thresholds.md``.  The earlier
:mod:`repro.detection.calibration` module (a scalar-filter-only
wrapper that optionally *resets* on large moves instead of
retargeting in place) remains as the minimal convenience; this module
is the production path.

>>> controller = ThresholdController(
...     initial_threshold=100.0, target_quantile=0.5,
...     warmup_items=8, min_dwell_items=8, deadband=0.05)
>>> for value in [1, 2, 3, 4, 5, 6, 7, 200]:
...     decision = controller.observe(float(value))
>>> decision.retargeted, 4.0 <= decision.threshold <= 7.0
(True, True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.common.errors import ParameterError
from repro.quantiles.kll import KLLSketch

#: Estimator backends :func:`make_estimator` can build.
ESTIMATOR_BACKENDS = ("p2", "kll")

#: Bounded length of a control loop's kept retarget history.
_MAX_TRAJECTORY = 4_096


class P2QuantileEstimator:
    """P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the minimum, the target quantile ``q``, the two
    mid-quantiles ``q/2`` and ``(1+q)/2``, and the maximum.  Marker
    heights move by piecewise-parabolic interpolation as observations
    arrive, so the estimate adapts in O(1) time and O(1) space with no
    stored samples — the cheapest possible backend for a controller
    that runs beside every filter.

    The first five observations are stored exactly (the estimate is
    the sample quantile until the markers initialise), matching the
    original paper's startup rule.

    >>> est = P2QuantileEstimator(0.5)
    >>> for v in range(1, 100):
    ...     est.update(float(v))
    >>> 45.0 <= est.quantile() <= 55.0
    True
    """

    __slots__ = ("q", "_heights", "_positions", "_bases", "_increments",
                 "_count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ParameterError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        # Desired positions are affine in the count (base + n·increment
        # past the fifth observation), so they are computed on demand in
        # ``update`` instead of being advanced five-at-a-time per item —
        # this estimator sits on the filter hot path.
        self._bases = (1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q,
                       5.0)
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        self._count = 0

    @property
    def count(self) -> int:
        """Observations consumed so far."""
        return self._count

    @property
    def nbytes(self) -> int:
        """Modelled bytes: five markers × three floats, plus headers."""
        return 5 * 3 * 8 + 16

    def update(self, value: float) -> None:
        """Fold one observation into the marker state."""
        count = self._count = self._count + 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(float(value))
            if len(heights) == 5:
                heights.sort()
            return

        # Locate the cell the observation falls into; extremes stretch
        # the end markers.
        if value < heights[0]:
            heights[0] = float(value)
            cell = 0
        elif value >= heights[4]:
            heights[4] = float(value)
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1

        positions = self._positions
        for marker in range(cell + 1, 5):
            positions[marker] += 1.0

        # Adjust interior markers towards their desired positions,
        # computed in closed form from the count.
        past_five = float(count - 5)
        bases = self._bases
        increments = self._increments
        for marker in (1, 2, 3):
            at = positions[marker]
            delta = bases[marker] + past_five * increments[marker] - at
            above = positions[marker + 1]
            below = positions[marker - 1]
            if (delta >= 1.0 and above - at > 1.0) or (delta <= -1.0
                                                       and below - at < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(marker, step)
                if heights[marker - 1] < candidate < heights[marker + 1]:
                    heights[marker] = candidate
                else:
                    heights[marker] = self._linear(marker, step)
                positions[marker] = at + step

    def _parabolic(self, marker: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        at = positions[marker]
        below, above = positions[marker - 1], positions[marker + 1]
        return heights[marker] + step / (above - below) * (
            (at - below + step) * (heights[marker + 1] - heights[marker])
            / (above - at)
            + (above - at - step) * (heights[marker] - heights[marker - 1])
            / (at - below)
        )

    def _linear(self, marker: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        other = marker + int(step)
        return heights[marker] + step * (
            (heights[other] - heights[marker])
            / (positions[other] - positions[marker])
        )

    def quantile(self) -> float:
        """Current estimate of the ``q``-quantile (NaN before any data)."""
        heights = self._heights
        if not heights:
            return float("nan")
        if self._count < 5:
            ordered = sorted(heights)
            index = min(len(ordered) - 1,
                        max(0, round(self.q * len(ordered)) - 1))
            return ordered[index]
        return heights[2]

    def clear(self) -> None:
        """Reset to the empty state."""
        self.__init__(self.q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"P2QuantileEstimator(q={self.q}, count={self._count}, "
                f"estimate={self.quantile():.4g})")


class KLLQuantileEstimator:
    """KLL-sketch-backed single-quantile estimator.

    Wraps :class:`~repro.quantiles.kll.KLLSketch` behind the same
    ``update``/``quantile`` interface as :class:`P2QuantileEstimator`.
    Costlier than P² (~``3k`` stored values, occasional compaction
    cascades) but with a provable O(n/k) rank-error bound and exact
    behaviour on multi-modal distributions where P²'s parabolic
    interpolation can bias; sketches are also mergeable, which suits
    aggregating per-shard observers.
    """

    __slots__ = ("q", "_sketch")

    def __init__(self, q: float, k: int = 200, seed: int = 0):
        if not 0.0 < q < 1.0:
            raise ParameterError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._sketch = KLLSketch(k=k, seed=seed)

    @property
    def count(self) -> int:
        """Observations consumed so far."""
        return self._sketch.count

    @property
    def nbytes(self) -> int:
        """Modelled bytes of the backing sketch."""
        return self._sketch.nbytes

    def update(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self._sketch.insert(float(value))

    def quantile(self) -> float:
        """Current estimate of the ``q``-quantile (NaN before any data)."""
        if self._sketch.count == 0:
            return float("nan")
        return self._sketch.quantile(self.q)

    def clear(self) -> None:
        """Reset to the empty state."""
        self._sketch.clear()

    def merge(self, other: "KLLQuantileEstimator") -> None:
        """Fold another estimator's sketch into this one."""
        self._sketch.merge(other._sketch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KLLQuantileEstimator(q={self.q}, "
                f"count={self.count}, estimate={self.quantile():.4g})")


def make_estimator(backend: str, quantile: float, *, k: int = 200,
                   seed: int = 0):
    """Build a quantile estimator by backend name.

    ``"p2"`` → :class:`P2QuantileEstimator` (``k``/``seed`` unused);
    ``"kll"`` → :class:`KLLQuantileEstimator`.
    """
    if backend == "p2":
        return P2QuantileEstimator(quantile)
    if backend == "kll":
        return KLLQuantileEstimator(quantile, k=k, seed=seed)
    raise ParameterError(
        f"unknown estimator backend {backend!r}; choose from "
        f"{ESTIMATOR_BACKENDS}"
    )


@dataclass(frozen=True)
class ThresholdDecision:
    """Outcome of one controller evaluation.

    Attributes
    ----------
    retargeted:
        Whether the controller moved the threshold this evaluation.
    threshold:
        The threshold in force *after* the evaluation (new value when
        ``retargeted``, the standing one otherwise).
    previous:
        The threshold in force before the evaluation.
    estimate:
        The estimator's current ``q*``-quantile estimate (NaN before
        any data).
    items_seen:
        Observations the controller had consumed at decision time.
    reason:
        Why: ``"retarget"`` (moved), ``"warmup"`` (estimator too
        cold), ``"dwell"`` (minimum-dwell guard), ``"deadband"``
        (estimate within the hysteresis band), ``"empty"`` (no data).
    """

    retargeted: bool
    threshold: float
    previous: float
    estimate: float
    items_seen: int
    reason: str


class ThresholdController:
    """Track a target global quantile and decide when to move ``T``.

    The controller consumes the raw value stream (or a subsample), asks
    its estimator for the current ``q*``-quantile, and moves the
    threshold to the estimate only when all three guards pass:

    * **warmup** — the estimator holds at least ``warmup_items``
      observations, so a cold (or freshly restarted) estimator cannot
      steer the filter;
    * **dwell** — at least ``min_dwell_items`` observations since the
      last retarget (and since startup), bounding the retarget rate;
    * **deadband** — the estimate differs from the standing threshold
      by more than ``deadband`` *relative* (``|est − T| > deadband ·
      max(|T|, |est|)``), the hysteresis that stops estimator jitter
      from oscillating ``T``.

    Both estimator backends are *cumulative*: left alone they converge
    to the all-time quantile, which under drift lags the current
    distribution arbitrarily far (an upward-drifting stream keeps its
    recent exceedance above target forever).  ``horizon_items`` bounds
    that memory: every ``horizon_items`` observations the estimator is
    cleared and re-warmed, so the estimate only ever reflects the last
    ``≤ horizon_items`` values.  The warmup guard holds ``T`` steady
    through each re-warm.

    Setting ``T`` to the ``q*``-quantile holds the exceedance rate
    ``P(v > T)`` at ``1 − q*`` — the controller's notion of "report
    rate" (the actual :class:`~repro.core.quantile_filter.Report`
    emission rate additionally depends on ``epsilon`` and per-key value
    mixes; see ``docs/adaptive-thresholds.md``).

    Parameters
    ----------
    initial_threshold:
        The standing ``T`` before any retarget.
    target_quantile:
        ``q*`` in (0, 1); equivalently ``1 − target exceedance rate``.
    backend:
        ``"p2"`` (default) or ``"kll"``; ignored when ``estimator``
        is passed explicitly.
    deadband:
        Relative hysteresis width (default 0.05 = 5 %); must be >= 0.
    min_dwell_items:
        Minimum observations between retargets (default 2 048).
    warmup_items:
        Observations the estimator must hold before a retarget is
        allowed (default 512); also the re-warm requirement after each
        horizon restart.
    horizon_items:
        Clear the estimator every this many observations so the
        estimate tracks the recent distribution instead of the
        all-time one (default ``None`` = never clear; must be >=
        ``warmup_items`` when set, or the estimator would never
        re-warm).
    estimator:
        Pre-built estimator with ``update``/``quantile``/``count``/
        ``clear`` (overrides ``backend``).
    kll_k, seed:
        Forwarded to :func:`make_estimator` for the KLL backend.
    """

    def __init__(
        self,
        initial_threshold: float,
        target_quantile: float,
        *,
        backend: str = "p2",
        deadband: float = 0.05,
        min_dwell_items: int = 2_048,
        warmup_items: int = 512,
        horizon_items: Optional[int] = None,
        estimator=None,
        kll_k: int = 200,
        seed: int = 0,
    ):
        if not 0.0 < target_quantile < 1.0:
            raise ParameterError(
                f"target_quantile must be in (0, 1), got {target_quantile}"
            )
        if deadband < 0.0:
            raise ParameterError(f"deadband must be >= 0, got {deadband}")
        if min_dwell_items < 1:
            raise ParameterError(
                f"min_dwell_items must be >= 1, got {min_dwell_items}"
            )
        if warmup_items < 1:
            raise ParameterError(
                f"warmup_items must be >= 1, got {warmup_items}"
            )
        if horizon_items is not None and horizon_items < warmup_items:
            raise ParameterError(
                f"horizon_items ({horizon_items}) must be >= warmup_items "
                f"({warmup_items}); a shorter horizon never re-warms"
            )
        self.threshold = float(initial_threshold)
        self.horizon_items = horizon_items
        self.target_quantile = target_quantile
        self.deadband = deadband
        self.min_dwell_items = min_dwell_items
        self.warmup_items = warmup_items
        self.estimator = (
            estimator if estimator is not None
            else make_estimator(backend, target_quantile, k=kll_k, seed=seed)
        )
        self.backend = backend if estimator is None else "custom"
        self.items_seen = 0
        self.retargets = 0
        self.restarts = 0
        self._items_at_last_retarget = 0
        self.last_decision: Optional[ThresholdDecision] = None

    @property
    def target_rate(self) -> float:
        """The exceedance rate the controller holds: ``1 − q*``."""
        return 1.0 - self.target_quantile

    def observe(self, value: float) -> ThresholdDecision:
        """Consume one value and evaluate the guards."""
        self._maybe_restart()
        self.estimator.update(value)
        self.items_seen += 1
        return self._decide()

    def observe_many(self, values: Iterable[float]) -> ThresholdDecision:
        """Consume a batch of values, then evaluate the guards once.

        One decision per batch is the intended cadence for chunked
        engines: the guards see the post-batch estimator state, and
        batch boundaries are exactly where chunked filters can apply a
        retarget anyway.
        """
        self._maybe_restart()
        update = self.estimator.update
        n = 0
        if hasattr(values, "tolist"):
            values = values.tolist()
        for value in values:
            update(value)
            n += 1
        self.items_seen += n
        return self._decide()

    def _maybe_restart(self) -> None:
        """Clear the estimator when its memory exceeds the horizon."""
        if (self.horizon_items is not None
                and self.estimator.count >= self.horizon_items):
            self.estimator.clear()
            self.restarts += 1

    def _decide(self) -> ThresholdDecision:
        estimate = self.estimator.quantile()
        previous = self.threshold
        if self.items_seen == 0 or estimate != estimate:  # NaN: no data
            decision = self._decision(False, previous, estimate, "empty")
        elif self.estimator.count < self.warmup_items:
            decision = self._decision(False, previous, estimate, "warmup")
        elif (self.items_seen - self._items_at_last_retarget
              < self.min_dwell_items):
            decision = self._decision(False, previous, estimate, "dwell")
        elif abs(estimate - previous) <= self.deadband * max(
            abs(previous), abs(estimate)
        ):
            decision = self._decision(False, previous, estimate, "deadband")
        else:
            self.threshold = float(estimate)
            self.retargets += 1
            self._items_at_last_retarget = self.items_seen
            decision = self._decision(True, previous, estimate, "retarget")
        self.last_decision = decision
        return decision

    def _decision(self, retargeted, previous, estimate, reason):
        return ThresholdDecision(
            retargeted=retargeted,
            threshold=self.threshold,
            previous=previous,
            estimate=estimate,
            items_seen=self.items_seen,
            reason=reason,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThresholdController(T={self.threshold:.4g}, "
            f"q*={self.target_quantile}, backend={self.backend!r}, "
            f"retargets={self.retargets}, items={self.items_seen})"
        )


class ThresholdControlLoop:
    """Bind a :class:`ThresholdController` to a retargetable filter.

    ``target`` is anything exposing ``retarget(threshold)`` — the
    scalar :class:`~repro.core.quantile_filter.QuantileFilter`, the
    :class:`~repro.core.vectorized.BatchQuantileFilter`, the
    :class:`~repro.parallel.sharded.ShardedQuantileFilter` façade, the
    :class:`~repro.core.windowed.WindowedQuantileFilter`, or a running
    :class:`~repro.parallel.pipeline.ParallelPipeline` (whose retarget
    broadcasts to every shard worker).  Feed the loop the same values
    the filter sees; accepted controller decisions are applied to the
    target immediately.

    ``sample_every`` subsamples the value stream deterministically
    (every ``n``-th value) so the estimator update cost can be held to
    an arbitrarily small fraction of the insert path — quantiles are
    order statistics, so a strided subsample is an unbiased view of a
    stream whose value order is not adversarially aligned with the
    stride.

    >>> from repro.core.criteria import Criteria
    >>> from repro.core.quantile_filter import QuantileFilter
    >>> qf = QuantileFilter(Criteria(delta=0.5, threshold=1000.0,
    ...                              epsilon=2.0),
    ...                     num_buckets=8, vague_width=16)
    >>> loop = ThresholdControlLoop(
    ...     ThresholdController(qf.criteria.threshold, 0.5,
    ...                         warmup_items=16, min_dwell_items=16),
    ...     qf)
    >>> for i in range(64):
    ...     _ = qf.insert("k", float(i % 10))
    ...     _ = loop.observe(float(i % 10))
    >>> qf.criteria.threshold < 1000.0, qf.retargets >= 1
    (True, True)
    """

    def __init__(self, controller: ThresholdController, target, *,
                 sample_every: int = 1, on_decision=None):
        if sample_every < 1:
            raise ParameterError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if not hasattr(target, "retarget"):
            raise ParameterError(
                f"control-loop target {type(target).__name__} has no "
                "retarget() method"
            )
        self.controller = controller
        self.target = target
        self.sample_every = sample_every
        #: Called with every evaluated :class:`ThresholdDecision`
        #: (retargeted or not) — e.g. a flight recorder's
        #: ``record_decision`` so incident bundles carry the controller
        #: evaluations that preceded the incident.
        self.on_decision = on_decision
        self._stride_phase = 0
        #: ``(items_seen, old_threshold, new_threshold)`` per applied
        #: retarget, bounded to the most recent ``4096``.
        self.trajectory: List[Tuple[int, float, float]] = []

    @property
    def retargets(self) -> int:
        """Retargets applied to the target so far."""
        return self.controller.retargets

    @property
    def threshold(self) -> float:
        """The threshold currently in force."""
        return self.controller.threshold

    def observe(self, value: float) -> Optional[ThresholdDecision]:
        """Feed one value; returns the decision when one was evaluated.

        With ``sample_every > 1`` most calls only advance the stride
        counter and return ``None``.
        """
        self._stride_phase += 1
        if self._stride_phase < self.sample_every:
            return None
        self._stride_phase = 0
        decision = self.controller.observe(value)
        if self.on_decision is not None:
            self.on_decision(decision)
        if decision.retargeted:
            self._apply(decision)
        return decision

    def observe_many(self, values) -> Optional[ThresholdDecision]:
        """Feed a batch (subsampled by ``sample_every``); one decision.

        Returns ``None`` when the stride left nothing to consume.
        """
        if self.sample_every > 1:
            # Stride BEFORE any list conversion: on an ndarray the
            # slice is a zero-copy view, so the skipped values are
            # never boxed and the cost truly scales with 1/n.
            offset = (
                self.sample_every - self._stride_phase - 1
            ) % self.sample_every
            taken = values[offset::self.sample_every]
            self._stride_phase = (
                self._stride_phase + len(values)
            ) % self.sample_every
            if len(taken) == 0:
                return None
            values = taken
        decision = self.controller.observe_many(values)
        if self.on_decision is not None:
            self.on_decision(decision)
        if decision.retargeted:
            self._apply(decision)
        return decision

    def _apply(self, decision: ThresholdDecision) -> None:
        self.target.retarget(decision.threshold)
        if len(self.trajectory) < _MAX_TRAJECTORY:
            self.trajectory.append(
                (decision.items_seen, decision.previous, decision.threshold)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThresholdControlLoop(T={self.threshold:.4g}, "
            f"retargets={self.retargets}, "
            f"sample_every={self.sample_every})"
        )
