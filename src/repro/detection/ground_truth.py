"""Exact online detection — the oracle that defines true positives.

Definition 4 only needs, per key, the pair ``(n, count_above_T)`` of the
values since the last report (the quantile test reduces to a count
comparison; see :mod:`repro.core.qweight`).  The oracle therefore runs
in O(1) exact time per item — it is "cheating" on memory (one entry per
distinct key), which is precisely the cost the sketches avoid.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.core.criteria import Criteria
from repro.core.qweight import ExactQweightTracker
from repro.detection.base import Detector


class GroundTruthDetector(Detector):
    """Exact Definition 4 detector with per-key reset-on-report state."""

    name = "ground-truth"

    def __init__(self, criteria: Criteria):
        self.criteria = criteria
        self._trackers: Dict[Hashable, ExactQweightTracker] = {}
        self._key_criteria: Dict[Hashable, Criteria] = {}
        self._reported: Set[Hashable] = set()
        self._items = 0

    def process(self, key: Hashable, value: float) -> Optional[Hashable]:
        """Exact Definition 4 step for one item."""
        self._items += 1
        tracker = self._trackers.get(key)
        if tracker is None:
            crit = self._key_criteria.get(key, self.criteria)
            tracker = ExactQweightTracker(crit)
            self._trackers[key] = tracker
        if tracker.offer(value):
            self._reported.add(key)
            return key
        return None

    def set_key_criteria(self, key: Hashable, criteria: Criteria) -> None:
        """Per-key criteria override; resets the key's tracked values."""
        self._key_criteria[key] = criteria
        tracker = self._trackers.get(key)
        if tracker is not None:
            tracker.criteria = criteria
            tracker.reset()

    @property
    def reported_keys(self) -> Set[Hashable]:
        return self._reported

    @property
    def items_processed(self) -> int:
        return self._items

    @property
    def distinct_keys(self) -> int:
        """Number of distinct keys with tracked state."""
        return len(self._trackers)

    @property
    def nbytes(self) -> int:
        """Modelled bytes: key 8 B + two 4 B counters per distinct key."""
        return 16 * len(self._trackers)

    def key_state(self, key: Hashable) -> Tuple[int, int]:
        """Current ``(n, above)`` of ``key`` (testing/debugging hook)."""
        tracker = self._trackers.get(key)
        if tracker is None:
            return 0, 0
        return tracker.n, tracker.above


def compute_ground_truth(
    items: Iterable[Tuple[Hashable, float]], criteria: Criteria
) -> Set[Hashable]:
    """True outstanding-key set of a finite stream.

    Convenience wrapper: streams ``items`` through a fresh
    :class:`GroundTruthDetector` and returns its deduplicated report set.
    """
    oracle = GroundTruthDetector(criteria)
    for key, value in items:
        oracle.process(key, value)
    return oracle.reported_keys


class WindowedGroundTruthDetector(Detector):
    """Exact Definition 4 over tumbling windows.

    The exact reference for :class:`~repro.core.windowed.WindowedQuantileFilter`
    in tumbling mode: every key's value set additionally resets at the
    global window boundaries (every ``window_items`` processed items),
    exactly as the windowed filter's structure reset does.
    """

    name = "windowed-ground-truth"

    def __init__(self, criteria: Criteria, window_items: int):
        if window_items < 1:
            from repro.common.errors import ParameterError

            raise ParameterError(
                f"window_items must be >= 1, got {window_items}"
            )
        self.criteria = criteria
        self.window_items = window_items
        self._inner = GroundTruthDetector(criteria)
        self._reported: Set[Hashable] = set()
        self._items = 0
        self._since_reset = 0
        self.resets = 0

    def process(self, key: Hashable, value: float) -> Optional[Hashable]:
        """One item, with the tumbling reset applied first."""
        if self._since_reset >= self.window_items:
            # Fresh per-key state; keep the criteria overrides.
            fresh = GroundTruthDetector(self.criteria)
            fresh._key_criteria = self._inner._key_criteria
            self._inner = fresh
            self.resets += 1
            self._since_reset = 0
        self._items += 1
        self._since_reset += 1
        reported = self._inner.process(key, value)
        if reported is not None:
            self._reported.add(reported)
        return reported

    def set_key_criteria(self, key: Hashable, criteria: Criteria) -> None:
        """Per-key criteria override (survives window resets)."""
        self._inner.set_key_criteria(key, criteria)

    @property
    def reported_keys(self) -> Set[Hashable]:
        return self._reported

    @property
    def items_processed(self) -> int:
        return self._items

    @property
    def nbytes(self) -> int:
        """Modelled bytes of the current window's per-key state."""
        return self._inner.nbytes
