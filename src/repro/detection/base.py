"""The detector interface the experiment harness drives.

A detector consumes ``(key, value)`` items one at a time and accumulates
a deduplicated set of reported keys.  The accuracy metric
(Sec. V-B "Metrics") streams the whole dataset through a detector and
compares that set with the ground truth's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Optional, Set


@dataclass
class DetectorStats:
    """Summary counters published by every detector after a run."""

    items_processed: int
    report_count: int
    nbytes: int


class Detector(ABC):
    """One online outstanding-key detector (Definition 4 solver)."""

    #: Display name used in experiment tables.
    name = "detector"

    @abstractmethod
    def process(self, key: Hashable, value: float) -> Optional[Hashable]:
        """Consume one item; return the key if it was reported, else None."""

    @property
    @abstractmethod
    def reported_keys(self) -> Set[Hashable]:
        """Deduplicated set of all keys reported so far."""

    @property
    @abstractmethod
    def nbytes(self) -> int:
        """Modelled memory footprint in bytes."""

    @property
    @abstractmethod
    def items_processed(self) -> int:
        """Number of items consumed so far."""

    def stats(self) -> DetectorStats:
        """Run summary for reporting."""
        return DetectorStats(
            items_processed=self.items_processed,
            report_count=len(self.reported_keys),
            nbytes=self.nbytes,
        )
