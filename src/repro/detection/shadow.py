"""Shadow accuracy estimation: exact tracking of a hash-sampled key slice.

A deployed sketch has no ground truth to score itself against — the
whole point of sketching is that exact per-key state is unaffordable.
But exact state for a *deterministic sample* of keys is affordable: at
``sample_rate=64`` the shadow tracker pays ~1/64th of the oracle's
memory and still sees every occurrence of every sampled key, because
membership is a pure function of the key (a salted hash threshold), not
of arrival order.  Running the exact Definition 4 oracle
(:class:`~repro.detection.ground_truth.GroundTruthDetector`) over that
slice yields the true outstanding subset of the sampled keys; comparing
it with the filter's reported keys *restricted to the same slice* gives
live precision/recall estimates, with Wilson confidence intervals for
the sampling error.

Caveats (also in ``docs/observability.md``):

* The estimate covers sampling error only — both the shadow and the
  filter see the same stream, so stream-level noise cancels.
* Small slices give wide intervals; size ``sample_rate`` so at least a
  few tens of truly outstanding keys land in the slice.
* Keys must be hashable the same way on both sides; the estimator uses
  :func:`~repro.common.hashing.canonical_key`, the package-wide rule.

>>> from repro.core.criteria import Criteria
>>> est = ShadowAccuracyEstimator(
...     Criteria(delta=0.5, threshold=10.0, epsilon=1.0), sample_rate=1)
>>> for _ in range(8):
...     est.observe("hot", 50.0)
>>> score = est.score(reported_keys={"hot"})
>>> (score.precision, score.recall)
(1.0, 1.0)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Set, Tuple

import numpy as np

from repro.common.errors import ParameterError
from repro.common.hashing import _mix64_array, canonical_key, canonical_keys, mix64
from repro.core.criteria import Criteria
from repro.detection.ground_truth import GroundTruthDetector
from repro.metrics.accuracy import score_sets

#: Salt-derivation constant so shadow sampling never correlates with the
#: filter's own hash families (which use different xor constants).
_SHADOW_SALT = 0x53_48_41_44_4F_57_51_46  # "SHADOWQF"


def wilson_interval(
    successes: int, total: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The interval of choice for small counts: unlike the normal
    approximation it stays inside [0, 1] and does not collapse to a
    point at 0/n or n/n.  ``total == 0`` returns the vacuous (0, 1).

    >>> lo, hi = wilson_interval(9, 10)
    >>> 0.55 < lo < 0.65 and 0.98 < hi <= 1.0
    True
    >>> wilson_interval(0, 0)
    (0.0, 1.0)
    """
    if total < 0 or successes < 0 or successes > total:
        raise ParameterError(
            f"invalid proportion counts: {successes}/{total}"
        )
    if total == 0:
        return (0.0, 1.0)
    p = successes / total
    z2 = z * z
    denom = 1.0 + z2 / total
    center = (p + z2 / (2.0 * total)) / denom
    spread = (
        z * math.sqrt(p * (1.0 - p) / total + z2 / (4.0 * total * total))
    ) / denom
    return (max(0.0, center - spread), min(1.0, center + spread))


@dataclass(frozen=True)
class ShadowScore:
    """Live precision/recall over the sampled slice, with intervals.

    ``precision_low/high`` and ``recall_low/high`` are Wilson 95 %
    bounds on the sampling error; the point estimates follow the
    package-wide empty-set conventions of
    :class:`~repro.metrics.accuracy.DetectionScore` (1.0 when nothing
    was reported / outstanding in the slice).
    """

    precision: float
    recall: float
    precision_low: float
    precision_high: float
    recall_low: float
    recall_high: float
    true_positives: int
    false_positives: int
    false_negatives: int
    sampled_keys: int
    sampled_items: int

    def as_dict(self) -> dict:
        """Flat JSON-ready dict (what ``/healthz`` embeds)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "precision_ci": [self.precision_low, self.precision_high],
            "recall_ci": [self.recall_low, self.recall_high],
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "sampled_keys": self.sampled_keys,
            "sampled_items": self.sampled_items,
        }


class ShadowAccuracyEstimator:
    """Exactly track a deterministic 1-in-``sample_rate`` slice of keys.

    Parameters
    ----------
    criteria:
        The same criteria the monitored filter runs — the shadow oracle
        must answer the identical Definition 4 question.
    sample_rate:
        Expected keys per sampled key (1 = track everything, the full
        oracle).  Membership is ``mix64(canonical_key(k) ^ salt) <
        2^64 / sample_rate`` — deterministic, order-independent, and
        identical on the scalar and vectorised paths.
    seed:
        Varies the salt so independent estimators sample disjoint-ish
        slices.
    """

    def __init__(
        self, criteria: Criteria, sample_rate: int = 64, seed: int = 0
    ):
        if sample_rate < 1:
            raise ParameterError(
                f"sample_rate must be >= 1, got {sample_rate}"
            )
        self.criteria = criteria
        self.sample_rate = sample_rate
        self.seed = seed
        self._salt = mix64(seed ^ _SHADOW_SALT)
        self._salt_u64 = np.uint64(self._salt)
        # sample_rate == 1 would need a threshold of 2^64, which does
        # not fit in uint64 — special-cased to "everything is sampled".
        self._all = sample_rate == 1
        self._limit = (1 << 64) // sample_rate
        self._limit_u64 = np.uint64(self._limit if not self._all else 0)
        self._oracle = GroundTruthDetector(criteria)
        self.items_seen = 0
        self.sampled_items = 0

    # ------------------------------------------------------------------
    # sampling predicate
    # ------------------------------------------------------------------
    def is_sampled(self, key: Hashable) -> bool:
        """Whether ``key`` belongs to the shadow slice."""
        if self._all:
            return True
        return mix64(canonical_key(key) ^ self._salt) < self._limit

    def sample_mask(self, keys) -> np.ndarray:
        """Vectorised :meth:`is_sampled` over a key array."""
        canon = canonical_keys(np.asarray(keys))
        if self._all:
            return np.ones(canon.shape[0], dtype=bool)
        return _mix64_array(canon ^ self._salt_u64) < self._limit_u64

    # ------------------------------------------------------------------
    # observation (call alongside the filter's inserts)
    # ------------------------------------------------------------------
    def observe(self, key: Hashable, value: float) -> None:
        """Feed one stream item; only sampled keys reach the oracle."""
        self.items_seen += 1
        if self.is_sampled(key):
            self.sampled_items += 1
            self._oracle.process(key, value)

    def observe_batch(self, keys, values) -> None:
        """Vectorised :meth:`observe`: hash-mask the chunk, then run the
        oracle over the (small) sampled subset only."""
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape[0] != values.shape[0]:
            raise ParameterError(
                f"keys and values length mismatch: {keys.shape[0]} vs "
                f"{values.shape[0]}"
            )
        self.items_seen += int(keys.shape[0])
        mask = self.sample_mask(keys)
        indices = np.flatnonzero(mask)
        self.sampled_items += int(indices.shape[0])
        process = self._oracle.process
        if np.issubdtype(keys.dtype, np.integer):
            for i in indices:
                process(int(keys[i]), float(values[i]))
        else:
            for i in indices:
                process(keys[i], float(values[i]))

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    @property
    def sampled_keys(self) -> int:
        """Distinct keys currently tracked in the shadow slice."""
        return self._oracle.distinct_keys

    @property
    def true_outstanding(self) -> Set[Hashable]:
        """The oracle's outstanding set within the slice (truth)."""
        return self._oracle.reported_keys

    @property
    def nbytes(self) -> int:
        """Modelled bytes of the shadow oracle's per-key state."""
        return self._oracle.nbytes

    def score(self, reported_keys: Iterable[Hashable]) -> ShadowScore:
        """Score the filter's reports against the shadow truth.

        ``reported_keys`` is the monitored filter's full deduplicated
        report set; it is restricted to the sampled slice before
        comparison, so the two sides answer the same question.
        """
        sampled_reported = {
            key for key in reported_keys if self.is_sampled(key)
        }
        truth = self._oracle.reported_keys
        detection = score_sets(sampled_reported, truth)
        tp = detection.true_positives
        p_low, p_high = wilson_interval(tp, tp + detection.false_positives)
        r_low, r_high = wilson_interval(tp, tp + detection.false_negatives)
        if tp + detection.false_positives == 0:
            p_low, p_high = (0.0, 1.0)
        if tp + detection.false_negatives == 0:
            r_low, r_high = (0.0, 1.0)
        return ShadowScore(
            precision=detection.precision,
            recall=detection.recall,
            precision_low=p_low,
            precision_high=p_high,
            recall_low=r_low,
            recall_high=r_high,
            true_positives=tp,
            false_positives=detection.false_positives,
            false_negatives=detection.false_negatives,
            sampled_keys=self.sampled_keys,
            sampled_items=self.sampled_items,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShadowAccuracyEstimator(rate={self.sample_rate}, "
            f"{self.sampled_keys} keys, {self.sampled_items}/"
            f"{self.items_seen} items)"
        )
