"""Automatic threshold calibration.

The paper sets T by hand per dataset "to ensure the proportion of
abnormal items is around 5 %".  A deployed monitor rarely knows its
value distribution up front, and the distribution drifts.
:class:`AutoThresholdCalibrator` automates the paper's calibration rule:
a KLL sketch summarises the global value distribution online, and every
``recalibrate_every`` items the threshold moves to the value quantile
that puts ``target_abnormal_fraction`` of the traffic above it.

:class:`AutoThresholdFilter` wires the calibrator to a QuantileFilter.
Per Sec. III-C, a criteria change resets affected value sets — but a
*global* T change would mean deleting every key, so instead the filter
applies the new T prospectively (new items are weighed against the new
T) and optionally performs a structure reset when the threshold moved
by more than ``reset_on_relative_change``.  Gradual drift therefore
recalibrates for free; regime changes trigger one clean reset.

This module is the minimal single-filter convenience.  The generalised
control loop — interchangeable P²/KLL estimator backends, deadband and
dwell guards against thrashing, a bounded freshness horizon, and a
``retarget()`` path spanning the scalar, batch, sharded, windowed and
pipeline engines — lives in :mod:`repro.detection.threshold`; see
``docs/adaptive-thresholds.md`` for how the two relate.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter, Report
from repro.quantiles.kll import KLLSketch


class AutoThresholdCalibrator:
    """Track the global value distribution; propose thresholds.

    Parameters
    ----------
    target_abnormal_fraction:
        Desired share of items above the threshold (the paper's ~5 %).
    recalibrate_every:
        How many observed values between threshold proposals.
    k:
        KLL accuracy parameter for the value summary.
    min_samples:
        No proposals until this many values have been seen.
    """

    def __init__(
        self,
        target_abnormal_fraction: float = 0.05,
        recalibrate_every: int = 10_000,
        k: int = 256,
        min_samples: int = 1_000,
        seed: int = 0,
    ):
        if not 0.0 < target_abnormal_fraction < 1.0:
            raise ParameterError(
                "target_abnormal_fraction must be in (0, 1), got "
                f"{target_abnormal_fraction}"
            )
        if recalibrate_every < 1:
            raise ParameterError(
                f"recalibrate_every must be >= 1, got {recalibrate_every}"
            )
        if min_samples < 1:
            raise ParameterError(f"min_samples must be >= 1, got {min_samples}")
        self.target_abnormal_fraction = target_abnormal_fraction
        self.recalibrate_every = recalibrate_every
        self.min_samples = min_samples
        self._sketch = KLLSketch(k=k, seed=seed)
        self._since_proposal = 0

    def observe(self, value: float) -> Optional[float]:
        """Record one value; returns a new threshold when due."""
        self._sketch.insert(value)
        self._since_proposal += 1
        if (
            self._sketch.count >= self.min_samples
            and self._since_proposal >= self.recalibrate_every
        ):
            self._since_proposal = 0
            return self.current_threshold()
        return None

    def current_threshold(self) -> Optional[float]:
        """The value quantile matching the target abnormal share."""
        if self._sketch.count < self.min_samples:
            return None
        return self._sketch.quantile(1.0 - self.target_abnormal_fraction)

    @property
    def samples_seen(self) -> int:
        """Values observed so far."""
        return self._sketch.count

    @property
    def nbytes(self) -> int:
        """Modelled footprint of the value summary."""
        return self._sketch.nbytes


class AutoThresholdFilter:
    """QuantileFilter whose T self-calibrates to the value distribution.

    Parameters
    ----------
    base_criteria:
        Supplies delta and epsilon; its threshold is the bootstrap value
        used until the calibrator has enough samples.
    memory_bytes:
        Budget of the underlying filter.
    calibrator:
        An :class:`AutoThresholdCalibrator` (constructed with defaults
        when omitted).
    reset_on_relative_change:
        When a recalibration moves T by more than this relative amount,
        the filter's structures reset (accumulated Qweights were earned
        against a threshold too different to keep).  ``None`` disables
        resets — T changes apply prospectively only.
    """

    def __init__(
        self,
        base_criteria: Criteria,
        memory_bytes: int,
        calibrator: Optional[AutoThresholdCalibrator] = None,
        reset_on_relative_change: Optional[float] = 0.5,
        **filter_kwargs,
    ):
        if reset_on_relative_change is not None and reset_on_relative_change <= 0:
            raise ParameterError(
                "reset_on_relative_change must be > 0 or None, got "
                f"{reset_on_relative_change}"
            )
        self.criteria = base_criteria
        self.calibrator = calibrator or AutoThresholdCalibrator()
        self.reset_on_relative_change = reset_on_relative_change
        self.filter = QuantileFilter(base_criteria, memory_bytes,
                                     **filter_kwargs)
        self.threshold_changes = 0
        self.structure_resets = 0

    def insert(self, key: Hashable, value: float) -> Optional[Report]:
        """Observe, maybe recalibrate, then detect under the current T."""
        proposal = self.calibrator.observe(value)
        if proposal is not None and proposal != self.criteria.threshold:
            self._apply_threshold(proposal)
        return self.filter.insert(key, value, criteria=self.criteria)

    def _apply_threshold(self, new_threshold: float) -> None:
        old = self.criteria.threshold
        self.criteria = self.criteria.with_updates(threshold=new_threshold)
        self.threshold_changes += 1
        if self.reset_on_relative_change is None or old == 0:
            return
        relative = abs(new_threshold - old) / abs(old)
        if relative > self.reset_on_relative_change:
            self.filter.reset()
            self.structure_resets += 1

    @property
    def reported_keys(self):
        """Deduplicated reported keys of the underlying filter."""
        return self.filter.reported_keys

    @property
    def current_threshold(self) -> float:
        """The threshold items are currently weighed against."""
        return self.criteria.threshold

    @property
    def nbytes(self) -> int:
        """Filter plus calibrator footprint."""
        return self.filter.nbytes + self.calibrator.nbytes
