"""Report aggregation and alert hygiene for long-running monitors.

Definition 4 fires a report every time a key's quantile re-crosses the
threshold — at most once per ``epsilon`` items per key, but on a hot key
that is still a steady drumbeat.  Operators usually want the *alert*
layer deduplicated and rate-limited on top of the raw reports.
:class:`ReportLog` aggregates the raw stream (per-key counts,
first/last trigger positions) and :class:`AlertPolicy` turns it into
alerts with a per-key cooldown.

Both attach to any detector via its ``on_report`` callback::

    log = ReportLog()
    qf = QuantileFilter(criteria, memory_bytes=..., on_report=log.record)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional

from repro.common.errors import ParameterError
from repro.core.quantile_filter import Report
from repro.observability.provenance import ReportProvenance


@dataclass
class KeyReportSummary:
    """Aggregated report history of one key.

    ``history`` keeps the most recent per-report detail — bounded by the
    owning log's ``max_reports_per_key`` ring buffer; ``truncated``
    counts the older entries that were pushed out (the scalar
    aggregates above it never truncate).
    """

    key: Hashable
    count: int = 0
    first_item_index: int = -1
    last_item_index: int = -1
    last_qweight: float = 0.0
    sources: Dict[str, int] = field(default_factory=dict)
    history: Deque[Report] = field(default_factory=deque)
    truncated: int = 0
    last_provenance: Optional[ReportProvenance] = None

    def mean_gap(self) -> Optional[float]:
        """Average items between this key's reports (None if < 2)."""
        if self.count < 2:
            return None
        return (self.last_item_index - self.first_item_index) / (self.count - 1)


class ReportLog:
    """Accumulate raw reports into per-key summaries.

    Parameters
    ----------
    max_reports_per_key:
        Ring-buffer bound on each key's retained per-report history.
        A hot key reports every ``epsilon`` items forever, so an
        unbounded list is a slow memory leak in a long-running
        monitor; the default keeps the 64 most recent reports per key
        and counts what it dropped (``summary.truncated`` /
        :attr:`total_truncated`).  Pass ``None`` for the unbounded
        behaviour.
    """

    def __init__(self, max_reports_per_key: Optional[int] = 64):
        if max_reports_per_key is not None and max_reports_per_key < 1:
            raise ParameterError(
                f"max_reports_per_key must be >= 1 or None, "
                f"got {max_reports_per_key}"
            )
        self.max_reports_per_key = max_reports_per_key
        self._summaries: Dict[Hashable, KeyReportSummary] = {}
        self.total_reports = 0
        self.total_truncated = 0

    def record(self, report: Report) -> None:
        """Ingest one report (wire this to ``on_report``)."""
        summary = self._summaries.get(report.key)
        if summary is None:
            summary = KeyReportSummary(
                key=report.key,
                first_item_index=report.item_index,
                history=deque(maxlen=self.max_reports_per_key),
            )
            self._summaries[report.key] = summary
        summary.count += 1
        summary.last_item_index = report.item_index
        summary.last_qweight = report.qweight
        summary.sources[report.source] = summary.sources.get(report.source, 0) + 1
        if (
            summary.history.maxlen is not None
            and len(summary.history) == summary.history.maxlen
        ):
            summary.truncated += 1
            self.total_truncated += 1
        summary.history.append(report)
        if report.provenance is not None:
            summary.last_provenance = report.provenance
        self.total_reports += 1

    def summary(self, key: Hashable) -> Optional[KeyReportSummary]:
        """The key's aggregate, or None if it never reported."""
        return self._summaries.get(key)

    def keys(self) -> List[Hashable]:
        """All keys that have reported, most-reported first."""
        return sorted(
            self._summaries, key=lambda k: self._summaries[k].count,
            reverse=True,
        )

    def top(self, n: int) -> List[KeyReportSummary]:
        """The ``n`` most frequently reported keys' summaries."""
        return [self._summaries[key] for key in self.keys()[:n]]

    def __len__(self) -> int:
        return len(self._summaries)

    def clear(self) -> None:
        """Drop all aggregated history."""
        self._summaries.clear()
        self.total_reports = 0
        self.total_truncated = 0


class AlertPolicy:
    """Per-key cooldown between operator-facing alerts.

    A key's first report always alerts; subsequent reports alert only
    after at least ``cooldown_items`` further stream items have passed
    since its last alert.  This is alert hygiene *on top of* epsilon —
    epsilon spaces the reports, the cooldown spaces the pages.
    """

    def __init__(self, cooldown_items: int = 0):
        if cooldown_items < 0:
            raise ParameterError(
                f"cooldown_items must be >= 0, got {cooldown_items}"
            )
        self.cooldown_items = cooldown_items
        self._last_alert_index: Dict[Hashable, int] = {}
        self.alerts_emitted = 0
        self.alerts_suppressed = 0

    def should_alert(self, report: Report) -> bool:
        """Decide (and record) whether this report becomes an alert."""
        last = self._last_alert_index.get(report.key)
        if last is not None and report.item_index - last < self.cooldown_items:
            self.alerts_suppressed += 1
            return False
        self._last_alert_index[report.key] = report.item_index
        self.alerts_emitted += 1
        return True

    def reset_key(self, key: Hashable) -> None:
        """Forget a key's cooldown (e.g. after operator acknowledgement)."""
        self._last_alert_index.pop(key, None)
