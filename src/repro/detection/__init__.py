"""Online outstanding-key detection layer.

Everything that can solve Definition 4 — QuantileFilter, the naive dual
sketch, the SOTA baselines wrapped in query adapters, and the exact
oracle — is exposed through one small interface
(:class:`~repro.detection.base.Detector`) so the experiment harness can
run them interchangeably.
"""

from repro.detection.base import Detector, DetectorStats
from repro.detection.ground_truth import GroundTruthDetector, compute_ground_truth
from repro.detection.adapters import (
    MultiKeyQuantileEstimator,
    QueryOnInsertAdapter,
)
from repro.detection.shadow import (
    ShadowAccuracyEstimator,
    ShadowScore,
    wilson_interval,
)
from repro.detection.threshold import (
    ESTIMATOR_BACKENDS,
    KLLQuantileEstimator,
    P2QuantileEstimator,
    ThresholdControlLoop,
    ThresholdController,
    ThresholdDecision,
    make_estimator,
)

__all__ = [
    "Detector",
    "DetectorStats",
    "GroundTruthDetector",
    "compute_ground_truth",
    "MultiKeyQuantileEstimator",
    "QueryOnInsertAdapter",
    "ShadowAccuracyEstimator",
    "ShadowScore",
    "wilson_interval",
    "ESTIMATOR_BACKENDS",
    "P2QuantileEstimator",
    "KLLQuantileEstimator",
    "make_estimator",
    "ThresholdController",
    "ThresholdControlLoop",
    "ThresholdDecision",
]
