"""Analytical companions to the paper's Section IV theorems."""

from repro.analysis.theory import (
    csketch_width_for,
    csketch_depth_for,
    theorem1_error_bound,
    theorem2_reduction_factor,
    l2_norm,
)
from repro.analysis.sizing import SizingRecommendation, recommend

__all__ = [
    "csketch_width_for",
    "csketch_depth_for",
    "theorem1_error_bound",
    "theorem2_reduction_factor",
    "l2_norm",
    "SizingRecommendation",
    "recommend",
]
