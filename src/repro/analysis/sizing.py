"""Configuration sizing: turn workload expectations into a filter config.

The paper gives the ingredients — Theorem 1's width/depth formulas, the
candidate part's role of absorbing the likely-outstanding keys, the 4:1
split — but a user still has to assemble them.  :func:`recommend`
packages that reasoning: given how many distinct keys the deployment
expects, roughly how many may be outstanding at once, and the desired
failure probability, it returns concrete structure dimensions and the
byte budget they imply.

The output is a starting point, not an oracle: the paper (and our
Figs. 9-11 reproduction) shows accuracy is flat across wide parameter
ranges, so the estimate only needs to land in the right decade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.theory import csketch_depth_for
from repro.common.errors import ParameterError
from repro.common.memory import bits_to_bytes
from repro.core.candidate import QWEIGHT_COUNTER_BYTES
from repro.core.criteria import Criteria


@dataclass(frozen=True)
class SizingRecommendation:
    """A concrete QuantileFilter configuration with its cost."""

    num_buckets: int
    bucket_size: int
    depth: int
    vague_width: int
    fp_bits: int
    counter_kind: str
    candidate_bytes: int
    vague_bytes: int

    @property
    def total_bytes(self) -> int:
        """Modelled total footprint of the recommended configuration."""
        return self.candidate_bytes + self.vague_bytes

    def filter_kwargs(self) -> dict:
        """Keyword arguments for ``QuantileFilter(criteria, **kwargs)``."""
        return {
            "num_buckets": self.num_buckets,
            "bucket_size": self.bucket_size,
            "depth": self.depth,
            "vague_width": self.vague_width,
            "fp_bits": self.fp_bits,
            "counter_kind": self.counter_kind,
        }


def recommend(
    expected_keys: int,
    expected_outstanding: int,
    criteria: Criteria,
    failure_probability: float = 0.05,
    bucket_size: int = 6,
    headroom: float = 4.0,
    expected_items_per_key: float = 32.0,
) -> SizingRecommendation:
    """Recommend QuantileFilter dimensions for a workload.

    Parameters
    ----------
    expected_keys:
        Distinct keys expected per reset period.
    expected_outstanding:
        Upper estimate of keys that may be outstanding (or close to it)
        simultaneously — the population the candidate part must hold.
    criteria:
        The detection criteria; the report threshold sets the error
        scale the vague part must resolve.
    failure_probability:
        Per-key probability that a vague-part estimate misses by more
        than the report threshold (drives the depth via Theorem 1).
    bucket_size:
        Candidate entries per bucket (paper default 6).
    headroom:
        Multiplier on the candidate capacity over
        ``expected_outstanding``, absorbing election churn (the paper's
        4:1 budget split implies a similar factor).
    expected_items_per_key:
        Mean items per key within one reset period.  A key that never
        reports accumulates Qweight ~ -frequency, so this sets the
        magnitude scale of the vague part's residual mass.

    Sizing logic
    ------------
    * **Candidate part** — ``headroom * expected_outstanding`` slots,
      rounded up to whole buckets; outstanding keys must win candidate
      residency for exact counting (Theorem 3's precondition).
    * **Depth** — Theorem 1's ``ceil(8 ln(1/gamma))`` is very
      conservative (it budgets for worst-case L2); the paper's
      experiments show 3 rows suffice, so the recommendation clamps to
      [3, theorem depth] and keeps it odd for a clean median.
    * **Vague width** — Theorem 1 with the residual mass after the
      candidate part absorbs the heavy Qweights: the residual keys are
      mostly negative with magnitude up to their frequency, giving
      ``L2 ~ sqrt(expected_keys) * expected_items_per_key``; the width
      is chosen so one row's noise standard deviation stays below half
      the report threshold (or below the positive weight when
      epsilon = 0).
    """
    if expected_keys < 1:
        raise ParameterError(f"expected_keys must be >= 1, got {expected_keys}")
    if expected_outstanding < 1:
        raise ParameterError(
            f"expected_outstanding must be >= 1, got {expected_outstanding}"
        )
    if not 0.0 < failure_probability < 1.0:
        raise ParameterError(
            f"failure_probability must be in (0, 1), got {failure_probability}"
        )
    if headroom < 1.0:
        raise ParameterError(f"headroom must be >= 1, got {headroom}")
    if expected_items_per_key <= 0:
        raise ParameterError(
            f"expected_items_per_key must be > 0, got {expected_items_per_key}"
        )

    # Candidate part: enough buckets that the outstanding population
    # (with headroom) fits without bucket-level crowding.
    slots_needed = int(math.ceil(headroom * expected_outstanding))
    num_buckets = max(1, int(math.ceil(slots_needed / bucket_size)))

    # Depth: paper-practical 3 unless the requested failure probability
    # is loose enough that even Theorem 1 asks for less.
    theorem_depth = csketch_depth_for(failure_probability)
    depth = min(max(3, 1), theorem_depth)
    if depth % 2 == 0:
        depth += 1

    # Vague width: residual noise per row must not fake a report.
    # Once the heavy (outstanding-ish) keys are candidates, the residual
    # keys are the never-reporting ones, each carrying |Qw| up to its
    # frequency within the reset period.
    residual_l2 = math.sqrt(expected_keys) * expected_items_per_key
    tolerance = max(criteria.report_threshold / 2.0, criteria.positive_weight)
    # One row's std <= residual_l2 / sqrt(width)  =>  width >= (l2/tol)^2.
    vague_width = max(16, int(math.ceil((residual_l2 / tolerance) ** 2)))

    fp_bits = 16
    counter_kind = "int32"
    candidate_bytes = num_buckets * bucket_size * (
        bits_to_bytes(fp_bits) + QWEIGHT_COUNTER_BYTES
    )
    vague_bytes = depth * vague_width * 4
    return SizingRecommendation(
        num_buckets=num_buckets,
        bucket_size=bucket_size,
        depth=depth,
        vague_width=vague_width,
        fp_bits=fp_bits,
        counter_kind=counter_kind,
        candidate_bytes=candidate_bytes,
        vague_bytes=vague_bytes,
    )
