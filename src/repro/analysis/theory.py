"""Numeric forms of the paper's Section IV analysis.

These functions let the tests and the documentation check the
implementation against the theory:

* **Theorem 1** (vague part alone): with ``w = ceil(4 / eps^2)`` columns
  and ``d = ceil(8 ln(1/gamma))`` rows, the Qweight estimate is unbiased
  and ``P[|err| >= eps * L2] <= gamma`` where ``L2`` is the l2-norm of
  all true Qweights.
* **Theorem 2** (top-k removal under Zipf): removing the k largest
  Qweights shrinks the effective ``L2`` by ``k^(alpha - 0.5)``.
* **Theorem 3** (candidate part): the bound's ``L2`` only counts mass
  that ever entered the vague part — checked empirically in the tests,
  since it is dataset-dependent.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.common.errors import ParameterError


def csketch_width_for(eps: float) -> int:
    """Columns needed for relative error ``eps`` (Theorem 1's w)."""
    if not 0.0 < eps:
        raise ParameterError(f"eps must be > 0, got {eps}")
    return math.ceil(4.0 / (eps * eps))


def csketch_depth_for(gamma: float) -> int:
    """Rows needed for failure probability ``gamma`` (Theorem 1's d)."""
    if not 0.0 < gamma < 1.0:
        raise ParameterError(f"gamma must be in (0, 1), got {gamma}")
    return math.ceil(8.0 * math.log(1.0 / gamma))


def l2_norm(qweights: Iterable[float]) -> float:
    """``sqrt(sum Q_i^2)`` — the L2 mass Theorem 1's bound scales with."""
    return math.sqrt(sum(q * q for q in qweights))


def theorem1_error_bound(l2: float, width: int) -> float:
    """Per-row standard-deviation bound ``L2 / sqrt(w)``.

    This is the variance calculation inside Theorem 1's proof:
    ``Var(Q*) <= L2^2 / w``, so one row's error has standard deviation
    at most ``L2 / sqrt(w)`` and Chebyshev gives
    ``P[|err| >= eps*L2] <= 1 / (w * eps^2)``.
    """
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    if l2 < 0:
        raise ParameterError(f"l2 must be >= 0, got {l2}")
    return l2 / math.sqrt(width)


def chebyshev_failure_probability(eps: float, width: int) -> float:
    """Single-row failure probability ``min(1, 1 / (w * eps^2))``."""
    if eps <= 0:
        raise ParameterError(f"eps must be > 0, got {eps}")
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    return min(1.0, 1.0 / (width * eps * eps))


def theorem2_reduction_factor(alpha: float, k: int) -> float:
    """L2 reduction from removing the top-k Qweights under Zipf(alpha).

    Theorem 2: the residual L2 after dropping the k largest Qweights is
    at most ``L2 / k^(alpha - 0.5)`` — i.e. this function returns the
    multiplier ``k^-(alpha - 0.5)``.  Only meaningful for ``alpha > 0.5``
    (below that, the tail dominates and removing heads does not help).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if alpha <= 0.5:
        raise ParameterError(
            f"Theorem 2 requires alpha > 0.5 (tail-summable Qweights), got {alpha}"
        )
    return k ** (-(alpha - 0.5))


def residual_l2_after_topk(qweights: Iterable[float], k: int) -> float:
    """Exact residual L2 after removing the k largest |Qweight| keys.

    The empirical quantity Theorem 2 upper-bounds; the tests compare
    the two on Zipf-distributed Qweight vectors.
    """
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    ordered = sorted((abs(q) for q in qweights), reverse=True)
    return l2_norm(ordered[k:])
