"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only lets
``pip install -e .`` fall back to the legacy setuptools editable path
when PEP 660 wheel building is unavailable (offline build environments).
"""

from setuptools import setup

setup()
